"""Cubes (conjunctions of literals) over an integer-indexed variable universe.

A literal is a pair ``(var, phase)`` with ``var`` a non-negative integer and
``phase`` 1 for the positive literal ``x`` or 0 for the negative literal
``!x``.  A :class:`Cube` is an immutable set of non-conflicting literals and
doubles as a partial assignment / sampling constraint, which is exactly how
the paper uses cubes (``alpha |= c`` in Algorithm 1).

The empty cube is the constant-1 function (the unconstrained cube used at the
FBDT root).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

Literal = Tuple[int, int]


class Cube:
    """An immutable conjunction of literals.

    >>> c = Cube.from_literals([(0, 1), (2, 0)])   # x0 & !x2
    >>> c.phase(0), c.phase(2), c.phase(1)
    (1, 0, None)
    """

    __slots__ = ("_lits", "_hash", "_arrays")

    def __init__(self, lits: Optional[Dict[int, int]] = None):
        self._lits: Dict[int, int] = dict(lits) if lits else {}
        for var, phase in self._lits.items():
            if var < 0:
                raise ValueError(f"negative variable index {var}")
            if phase not in (0, 1):
                raise ValueError(f"phase must be 0 or 1, got {phase}")
        self._hash: Optional[int] = None
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- construction -----------------------------------------------------

    @classmethod
    def empty(cls) -> "Cube":
        """The unconstrained cube (constant 1)."""
        return cls()

    @classmethod
    def from_literals(cls, literals: Iterable[Literal]) -> "Cube":
        """Build a cube from ``(var, phase)`` pairs; conflicts raise."""
        lits: Dict[int, int] = {}
        for var, phase in literals:
            if lits.get(var, phase) != phase:
                raise ValueError(f"conflicting literals on variable {var}")
            lits[var] = phase
        return cls(lits)

    @classmethod
    def from_assignment(cls, values: Iterable[int],
                        variables: Optional[Iterable[int]] = None) -> "Cube":
        """Build the minterm cube fixing ``variables`` (default 0..n-1)."""
        vals = list(values)
        if variables is None:
            variables = range(len(vals))
        return cls({v: int(bool(b)) for v, b in zip(variables, vals)})

    # -- basic queries -----------------------------------------------------

    def phase(self, var: int) -> Optional[int]:
        """Phase of ``var`` in this cube, or None if free."""
        return self._lits.get(var)

    @property
    def variables(self) -> Tuple[int, ...]:
        """Sorted variables constrained by this cube."""
        return tuple(sorted(self._lits))

    def literals(self) -> Iterator[Literal]:
        """Iterate ``(var, phase)`` pairs in sorted variable order."""
        for var in sorted(self._lits):
            yield var, self._lits[var]

    def __len__(self) -> int:
        return len(self._lits)

    def __contains__(self, var: int) -> bool:
        return var in self._lits

    def is_empty(self) -> bool:
        """True for the unconstrained (constant-1) cube."""
        return not self._lits

    def num_minterms(self, num_vars: int) -> int:
        """Number of minterms in a ``num_vars``-dimensional space."""
        free = num_vars - len(self._lits)
        if free < 0:
            raise ValueError("cube constrains more variables than the space")
        return 1 << free

    # -- algebra -----------------------------------------------------------

    def with_literal(self, var: int, phase: int) -> "Cube":
        """Return ``self & lit``; raises on conflict (FBDT child cubes)."""
        existing = self._lits.get(var)
        if existing is not None and existing != phase:
            raise ValueError(f"conflicting literal on variable {var}")
        lits = dict(self._lits)
        lits[var] = phase
        return Cube(lits)

    def without(self, var: int) -> "Cube":
        """Return the cube with ``var`` freed."""
        lits = dict(self._lits)
        lits.pop(var, None)
        return Cube(lits)

    def conjoin(self, other: "Cube") -> Optional["Cube"]:
        """``self & other``, or None if the product is empty."""
        lits = dict(self._lits)
        for var, phase in other._lits.items():
            if lits.get(var, phase) != phase:
                return None
            lits[var] = phase
        return Cube(lits)

    def cofactor(self, var: int, phase: int) -> Optional["Cube"]:
        """Cofactor w.r.t. literal: None if contradicted, else var freed."""
        existing = self._lits.get(var)
        if existing is None:
            return self
        if existing != phase:
            return None
        return self.without(var)

    def contains(self, other: "Cube") -> bool:
        """True iff ``other``'s minterms are a subset of ``self``'s."""
        for var, phase in self._lits.items():
            if other._lits.get(var) != phase:
                return False
        return True

    def intersects(self, other: "Cube") -> bool:
        """True iff the two cubes share at least one minterm."""
        return self.distance(other) == 0

    def distance(self, other: "Cube") -> int:
        """Number of variables on which the cubes conflict."""
        small, large = self._lits, other._lits
        if len(small) > len(large):
            small, large = large, small
        return sum(1 for var, phase in small.items()
                   if large.get(var, phase) != phase)

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """Consensus cube if the distance is exactly 1, else None."""
        conflict: Optional[int] = None
        for var, phase in self._lits.items():
            o = other._lits.get(var)
            if o is not None and o != phase:
                if conflict is not None:
                    return None
                conflict = var
        if conflict is None:
            return None
        lits = dict(self._lits)
        lits.update(other._lits)
        del lits[conflict]
        return Cube(lits)

    def merge(self, other: "Cube") -> Optional["Cube"]:
        """Merge two cubes differing in exactly one variable's phase.

        Returns the single covering cube (the classic ``ab | a!b = a``
        reduction used after FBDT leaf collection), or None if the cubes
        are not mergeable.
        """
        if set(self._lits) != set(other._lits):
            return None
        if self.distance(other) != 1:
            return None
        return self.consensus(other)

    # -- evaluation / sampling ----------------------------------------------

    def lits_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(variables, phases)`` int arrays in sorted var order.

        The vectorized form the packed kernels and the sampling
        constraint application index with (one fancy-index op instead of
        one column op per literal).
        """
        if self._arrays is None:
            vars_sorted = sorted(self._lits)
            self._arrays = (
                np.asarray(vars_sorted, dtype=np.int64),
                np.asarray([self._lits[v] for v in vars_sorted],
                           dtype=np.uint8))
        return self._arrays

    def evaluate(self, patterns: np.ndarray) -> np.ndarray:
        """Vectorized satisfaction test (scalar reference path).

        ``patterns`` is a ``(N, num_vars)`` 0/1 array; returns a length-N
        boolean array with True where the pattern satisfies the cube.
        Kept as the bit-identical reference for the packed kernels
        (:meth:`match_words` / ``repro.logic.bitops.cube_eval``).
        """
        patterns = np.asarray(patterns)
        result = np.ones(patterns.shape[0], dtype=bool)
        for var, phase in self._lits.items():
            result &= patterns[:, var] == phase
        return result

    def match_words(self, words: np.ndarray, num_rows: int) -> np.ndarray:
        """Packed satisfaction test over a ``(V, ceil(N/64))`` uint64
        array (see :mod:`repro.logic.bitops`); bit-identical to
        :meth:`evaluate` on the unpacked patterns."""
        from repro.logic import bitops

        return bitops.cube_eval_words(words, num_rows,
                                      list(self.literals()))

    def apply_to(self, patterns: np.ndarray) -> np.ndarray:
        """Force the cube's literals into ``patterns`` in place; returns it.

        This implements the ``alpha |= c`` constraint of Algorithm 1:
        arbitrary random patterns become samples of the subspace ``c``.
        """
        if self._lits:
            variables, phases = self.lits_arrays()
            patterns[:, variables] = phases
        return patterns

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return self._lits == other._lits

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._lits.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._lits:
            return "Cube(1)"
        parts = [f"{'' if p else '!'}x{v}" for v, p in self.literals()]
        return "Cube(" + " & ".join(parts) + ")"

    def to_string(self, num_vars: int) -> str:
        """PLA-style positional string, e.g. ``1-0`` for ``x0 & !x2``."""
        chars = []
        for var in range(num_vars):
            phase = self._lits.get(var)
            chars.append("-" if phase is None else str(phase))
        return "".join(chars)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Inverse of :meth:`to_string`."""
        lits = {}
        for var, ch in enumerate(text):
            if ch == "-":
                continue
            if ch not in "01":
                raise ValueError(f"bad cube character {ch!r}")
            lits[var] = int(ch)
        return cls(lits)
