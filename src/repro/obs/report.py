"""The per-run manifest: ``run_report.json`` builder and validator.

One JSON artifact answers "what did this run cost, stage by stage" —
config, seed, per-stage wall/billed-rows, per-output method and rows,
degradation tags, bank traffic.  The schema ships both as the
:data:`REPORT_SCHEMA` constant and as the checked-in copy at
``docs/run_report.schema.json`` (a test keeps them identical), and
:func:`validate` is a minimal, zero-dependency JSON-schema subset
validator (type / properties / required / items / enum), so CI can gate
on report shape without installing ``jsonschema``.

Usage::

    python -m repro.obs.report run_report.json \
        --schema docs/run_report.schema.json
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional

_NUM = ["number", "integer"]

_STAGE_ENTRY = {
    "type": "object",
    "required": ["name", "wall_seconds", "billed_rows", "billed_calls"],
    "properties": {
        "name": {"type": "string"},
        "wall_seconds": {"type": _NUM},
        "billed_rows": {"type": "integer"},
        "billed_calls": {"type": "integer"},
    },
}

_OUTPUT_ENTRY = {
    "type": "object",
    "required": ["index", "name", "method", "support_size",
                 "billed_rows", "degraded"],
    "properties": {
        "index": {"type": "integer"},
        "name": {"type": "string"},
        "method": {"type": "string"},
        "detail": {"type": "string"},
        "support_size": {"type": "integer"},
        "billed_rows": {"type": "integer"},
        "degraded": {"type": "boolean"},
        "minimize_wall_s": {"type": _NUM},
        "minimize_cubes_in": {"type": "integer"},
        "minimize_cubes_out": {"type": "integer"},
    },
}

_PROFILE_SELF_TIME_ENTRY = {
    "type": "object",
    "required": ["stage", "output", "name", "spans", "wall_self_s"],
    "properties": {
        "stage": {"type": "string"},
        "output": {"type": "integer"},
        "name": {"type": "string"},
        "spans": {"type": "integer"},
        "wall_self_s": {"type": _NUM},
        "cpu_self_s": {"type": ["number", "integer", "null"]},
    },
}

_PROFILE_BLOCK = {
    "type": ["object", "null"],
    "required": ["counters", "self_time", "memory"],
    "properties": {
        "counters": {"type": "object"},
        "self_time": {"type": "array",
                      "items": _PROFILE_SELF_TIME_ENTRY},
        "memory": {"type": ["object", "null"]},
    },
}

_VERIFY_OUTPUT_ENTRY = {
    "type": "object",
    "required": ["output", "index", "status", "sampled", "mismatches",
                 "lower_bound"],
    "properties": {
        "output": {"type": "string"},
        "index": {"type": "integer"},
        "status": {"type": "string",
                   "enum": ["verified", "repaired", "inconclusive",
                            "verify-failed", "skipped"]},
        "sampled": {"type": "integer"},
        "mismatches": {"type": "integer"},
        "lower_bound": {"type": _NUM},
        "accuracy": {"type": _NUM},
        "exhaustive": {"type": "boolean"},
        "repair_rounds": {"type": "integer"},
        "patches_applied": {"type": "integer"},
        "relearned": {"type": "boolean"},
    },
}

_CACHE_COUNTERS = {
    "type": ["object", "null"],
    "required": ["hits", "misses"],
    "properties": {
        "hits": {"type": "integer"},
        "misses": {"type": "integer"},
        "entries": {"type": "integer"},
        "evictions": {"type": "integer"},
        "invalidated": {"type": "integer"},
        "retries_performed": {"type": "integer"},
        "faults_seen": {"type": "integer"},
        "rows_recorded": {"type": "integer"},
        "rows_evicted": {"type": "integer"},
        "prefilled_rows": {"type": "integer"},
        "exported_rows": {"type": "integer"},
        "rows_served": {"type": "integer"},
        "rows_stored": {"type": "integer"},
        "stores": {"type": "integer"},
        "fingerprint": {"type": "string"},
    },
}

_STORAGE_BLOCK = {
    "type": ["object", "null"],
    "required": ["durability", "brownout", "counters"],
    "properties": {
        "durability": {"type": "string", "enum": ["strict", "lax"]},
        "brownout": {"type": "boolean"},
        "counters": {
            "type": "object",
            "required": ["ops", "faults", "drops"],
            "properties": {
                "ops": {"type": "object"},
                "faults": {"type": "object"},
                "drops": {"type": "object"},
            },
        },
    },
}

REPORT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["schema_version", "run", "engine", "totals", "stages",
                 "outputs", "degradations", "bank", "caches",
                 "oracle_layers", "methods", "verification", "supervisor",
                 "job", "fleet", "profile", "storage"],
    "properties": {
        "schema_version": {"type": "integer", "enum": [7]},
        "profile": _PROFILE_BLOCK,
        "storage": _STORAGE_BLOCK,
        "engine": {
            "type": "object",
            "required": ["frontier_mode", "kernel_backend", "mode"],
            "properties": {
                "frontier_mode": {"type": "string",
                                  "enum": ["batched", "unbatched"]},
                "kernel_backend": {"type": "string",
                                   "enum": ["numpy", "numba"]},
                "mode": {"type": "string"},
            },
        },
        "run": {
            "type": "object",
            "required": ["seed", "jobs", "time_limit", "num_pis",
                         "num_pos", "elapsed_seconds"],
            "properties": {
                "seed": {"type": "integer"},
                "jobs": {"type": "integer"},
                "time_limit": {"type": _NUM},
                "num_pis": {"type": "integer"},
                "num_pos": {"type": "integer"},
                "elapsed_seconds": {"type": _NUM},
                "sample_bank": {"type": "boolean"},
                "max_retries": {"type": "integer"},
                "engine_mode": {"type": "string"},
            },
        },
        "totals": {
            "type": "object",
            "required": ["billed_rows", "billed_calls", "gate_count",
                         "outputs", "degraded_outputs"],
            "properties": {
                "billed_rows": {"type": "integer"},
                "billed_calls": {"type": "integer"},
                "gate_count": {"type": "integer"},
                "accuracy": {"type": ["number", "null"]},
                "outputs": {"type": "integer"},
                "degraded_outputs": {"type": "integer"},
            },
        },
        "stages": {"type": "array", "items": _STAGE_ENTRY},
        "outputs": {"type": "array", "items": _OUTPUT_ENTRY},
        "degradations": {"type": "array", "items": {"type": "string"}},
        "bank": {
            "type": ["object", "null"],
            "properties": {
                "hits": {"type": "integer"},
                "misses": {"type": "integer"},
                "rows_recorded": {"type": "integer"},
                "rows_evicted": {"type": "integer"},
                "take_calls": {"type": "integer"},
            },
        },
        "caches": {
            "type": "object",
            "required": ["sample_bank", "retry_cache", "cross_job"],
            "properties": {
                "sample_bank": _CACHE_COUNTERS,
                "retry_cache": _CACHE_COUNTERS,
                "cross_job": _CACHE_COUNTERS,
            },
        },
        "job": {
            "type": ["object", "null"],
            "required": ["id", "tenant", "tier", "priority", "attempt"],
            "properties": {
                "id": {"type": "string"},
                "tenant": {"type": "string"},
                "tier": {"type": "string"},
                "priority": {"type": "integer"},
                "attempt": {"type": "integer"},
            },
        },
        "fleet": {
            "type": ["object", "null"],
            "required": ["job_id", "tier", "attempt",
                         "queue_latency_seconds"],
            "properties": {
                "job_id": {"type": "string"},
                "tier": {"type": "string"},
                "attempt": {"type": "integer"},
                "queue_latency_seconds": {"type": _NUM},
            },
        },
        "oracle_layers": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["layer", "rows_served"],
                "properties": {
                    "layer": {"type": "string"},
                    "rows_served": {"type": "integer"},
                },
            },
        },
        "methods": {"type": "object"},
        "verification": {
            "type": ["object", "null"],
            "required": ["target", "confidence", "rows_spent",
                         "statuses", "all_certified", "outputs"],
            "properties": {
                "target": {"type": "number"},
                "confidence": {"type": "number"},
                "rows_spent": {"type": "integer"},
                "statuses": {"type": "object"},
                "all_certified": {"type": "boolean"},
                "outputs": {"type": "array",
                            "items": _VERIFY_OUTPUT_ENTRY},
            },
        },
        "supervisor": {
            "type": ["object", "null"],
            "properties": {
                "workers_spawned": {"type": "integer"},
                "workers_crashed": {"type": "integer"},
                "workers_hung": {"type": "integer"},
                "wall_timeouts": {"type": "integer"},
                "redispatches": {"type": "integer"},
                "quarantined": {"type": "integer"},
            },
        },
    },
}


# -- minimal schema validation ---------------------------------------------------

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(instance: Any, schema: Dict[str, Any],
             path: str = "$") -> List[str]:
    """Validate ``instance`` against a JSON-schema subset.

    Supports ``type`` (single or list), ``properties``, ``required``,
    ``items`` and ``enum`` — the constructs :data:`REPORT_SCHEMA` uses.
    Returns a list of human-readable errors (empty = valid).
    """
    errors: List[str] = []
    types = schema.get("type")
    if types is not None:
        allowed = types if isinstance(types, list) else [types]
        if not any(_TYPE_CHECKS[t](instance) for t in allowed):
            errors.append(
                f"{path}: expected {' or '.join(allowed)}, got "
                f"{type(instance).__name__}")
            return errors
    enum = schema.get("enum")
    if enum is not None and instance not in enum:
        errors.append(f"{path}: {instance!r} not in {enum}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in instance:
                errors.extend(validate(instance[key], sub,
                                       f"{path}.{key}"))
    if isinstance(instance, list):
        items = schema.get("items")
        if items is not None:
            for i, entry in enumerate(instance):
                errors.extend(validate(entry, items, f"{path}[{i}]"))
    return errors


# -- report assembly -------------------------------------------------------------


def _stage_walls(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-stage wall seconds from the *parent* run's stage spans.

    Only stage spans directly under the root ``run`` span count —
    adopted worker spans re-describe time already covered by the
    parent's ``learn`` span and would double-count wall-clock.
    """
    root_ids = {rec["id"] for rec in records
                if rec["type"] == "span" and rec["name"] == "run"
                and rec.get("parent") is None}
    walls: Dict[str, float] = {}
    order: List[str] = []
    for rec in records:
        if rec["type"] != "span" \
                or rec.get("attrs", {}).get("kind") != "stage" \
                or rec.get("parent") not in root_ids:
            continue
        name = rec["name"]
        if name not in walls:
            walls[name] = 0.0
            order.append(name)
        walls[name] += rec["dur"]
    return [{"name": name, "wall_seconds": round(walls[name], 6)}
            for name in order]


_DEGRADED_METHODS = ("degraded", "budget-exhausted")


def build_run_report(result, config, *,
                     accuracy: Optional[float] = None,
                     job: Optional[Dict[str, Any]] = None,
                     cross_job: Optional[Dict[str, Any]] = None,
                     fleet: Optional[Dict[str, Any]] = None,
                     storage: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
    """Assemble the run manifest from a finished :class:`LearnResult`.

    ``result`` must carry instrumentation (``config.observability``
    enabled); ``accuracy`` is optional because it is measured by the
    caller against held-out patterns, outside the learn budget.

    ``job`` (schema v3+) is the service's per-job identity —
    ``{id, tenant, tier, priority, attempt}`` — and ``cross_job`` the
    cross-job cache traffic for this run; both stay ``None`` for plain
    ``repro learn`` runs.  ``fleet`` (schema v5+) is the service-side
    scheduling context — ``{job_id, tier, attempt,
    queue_latency_seconds}`` — required whenever the run executed under
    the job scheduler, ``None`` otherwise.  ``storage`` (schema v7+) is
    the durability context — ``{durability, brownout, counters}`` from
    the hardened storage layer — populated by the service runner and
    ``repro learn``, ``None`` for callers without one.
    """
    instr = result.instrumentation
    if instr is None:
        raise ValueError(
            "result has no instrumentation; enable "
            "config.observability to build a run report")
    billed = instr.metrics.counter("oracle.rows_billed")
    calls = instr.metrics.counter("oracle.calls_billed")
    served = instr.metrics.counter("oracle.rows_served")

    stages = _stage_walls(instr.tracer.to_records())
    rows_by_stage = billed.by("stage")
    calls_by_stage = calls.by("stage")
    for entry in stages:
        entry["billed_rows"] = int(rows_by_stage.get(entry["name"], 0))
        entry["billed_calls"] = int(calls_by_stage.get(entry["name"], 0))
    # Traffic outside any stage scope (there should be none) still
    # shows up, so the stage table always sums to the billed total.
    for name, rows in sorted(rows_by_stage.items(),
                             key=lambda kv: str(kv[0])):
        if not any(s["name"] == name for s in stages):
            stages.append({"name": str(name), "wall_seconds": 0.0,
                           "billed_rows": int(rows),
                           "billed_calls": int(
                               calls_by_stage.get(name, 0))})

    rows_by_output = billed.by("output")
    outputs = []
    for rep in result.reports:
        entry = {
            "index": rep.po_index,
            "name": rep.po_name,
            "method": rep.method,
            "detail": rep.detail,
            "support_size": rep.support_size,
            "billed_rows": int(rows_by_output.get(rep.po_index, 0)),
            "degraded": rep.method in _DEGRADED_METHODS,
        }
        stats = getattr(rep, "stats", None)
        if stats is not None:
            # The minimizer hotspot, per output (ROADMAP item 2): wall
            # seconds in two-level minimization and the espresso-lite
            # cover sizes before/after cleanup.
            entry["minimize_wall_s"] = round(stats.minimize_wall_s, 6)
            entry["minimize_cubes_in"] = stats.minimize_cubes_in
            entry["minimize_cubes_out"] = stats.minimize_cubes_out
        outputs.append(entry)

    bank = None
    if result.bank_stats is not None:
        bs = result.bank_stats
        bank = {"hits": bs.hits, "misses": bs.misses,
                "rows_recorded": bs.rows_recorded,
                "rows_evicted": bs.rows_evicted,
                "take_calls": bs.take_calls}

    layers = [{"layer": str(layer), "rows_served": int(rows)}
              for layer, rows in sorted(served.by("layer").items(),
                                        key=lambda kv: str(kv[0]))]

    verification = getattr(result, "verification", None)

    sample_bank_cache = None
    if result.bank_stats is not None:
        bs = result.bank_stats
        sample_bank_cache = {
            "hits": bs.hits, "misses": bs.misses,
            "rows_recorded": bs.rows_recorded,
            "rows_evicted": bs.rows_evicted,
            "invalidated": bs.rows_invalidated,
            "prefilled_rows": int(getattr(result, "bank_prefilled", 0)),
        }
    retry_cache = None
    retry_stats = getattr(result, "retry_stats", None)
    if retry_stats is not None:
        retry_cache = {key: int(value)
                       for key, value in retry_stats.items()}
    cross_job_cache = None
    if cross_job is not None:
        cross_job_cache = dict(cross_job)

    job_section = None
    if job is not None:
        job_section = {
            "id": str(job.get("id", "")),
            "tenant": str(job.get("tenant", "anonymous")),
            "tier": str(job.get("tier", "standard")),
            "priority": int(job.get("priority", 0)),
            "attempt": int(job.get("attempt", 0)),
        }

    fleet_section = None
    if fleet is not None:
        fleet_section = {
            "job_id": str(fleet.get("job_id", "")),
            "tier": str(fleet.get("tier", "standard")),
            "attempt": int(fleet.get("attempt", 0)),
            "queue_latency_seconds": round(float(
                fleet.get("queue_latency_seconds", 0.0)), 6),
        }

    storage_section = None
    if storage is not None:
        counters = storage.get("counters") or {}
        storage_section = {
            "durability": str(storage.get("durability", "strict")),
            "brownout": bool(storage.get("brownout", False)),
            "counters": {
                "ops": dict(counters.get("ops", {})),
                "faults": {w: dict(per) for w, per in
                           (counters.get("faults", {})).items()},
                "drops": dict(counters.get("drops", {})),
            },
        }

    engine = dict(getattr(result, "engine", None) or {})
    engine.setdefault("frontier_mode", config.frontier_mode)
    engine.setdefault(
        "kernel_backend",
        config.kernel_backend if config.kernel_backend != "auto"
        else "numpy")
    engine.setdefault("mode", getattr(result, "engine_mode", "sequential"))

    profile_section = None
    if getattr(instr, "profile", False):
        from repro.obs.profile import Profiler

        profile_section = Profiler.from_instrumentation(instr).to_json()

    return {
        "schema_version": 7,
        "run": {
            "seed": config.seed,
            "jobs": config.jobs,
            "time_limit": config.time_limit,
            "num_pis": result.netlist.num_pis,
            "num_pos": result.netlist.num_pos,
            "elapsed_seconds": round(result.elapsed, 6),
            "sample_bank": config.enable_sample_bank,
            "max_retries": config.robustness.max_retries,
            "engine_mode": getattr(result, "engine_mode", "sequential"),
        },
        "engine": engine,
        "totals": {
            "billed_rows": int(billed.total()),
            "billed_calls": int(calls.total()),
            "gate_count": result.gate_count,
            "accuracy": accuracy,
            "outputs": len(result.reports),
            "degraded_outputs": sum(1 for o in outputs if o["degraded"]),
        },
        "stages": stages,
        "outputs": outputs,
        "degradations": result.degradations,
        "bank": bank,
        "caches": {
            "sample_bank": sample_bank_cache,
            "retry_cache": retry_cache,
            "cross_job": cross_job_cache,
        },
        "job": job_section,
        "fleet": fleet_section,
        "profile": profile_section,
        "storage": storage_section,
        "oracle_layers": layers,
        "methods": result.methods_used(),
        "verification": verification.to_json()
        if verification is not None else None,
        "supervisor": getattr(result, "supervisor", None),
    }


def write_run_report(report: Dict[str, Any], path: str) -> None:
    errors = validate(report, REPORT_SCHEMA)
    if errors:
        raise ValueError("run report failed schema validation: "
                         + "; ".join(errors[:5]))
    from repro.robustness.storage import get_storage
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    get_storage().atomic_write_text(path, text, writer="report")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.report",
        description="Validate a run_report.json against the schema.")
    parser.add_argument("report", help="path to run_report.json")
    parser.add_argument("--schema", default=None,
                        help="schema JSON path (default: built-in)")
    args = parser.parse_args(argv)
    with open(args.report) as handle:
        report = json.load(handle)
    schema = REPORT_SCHEMA
    if args.schema:
        with open(args.schema) as handle:
            schema = json.load(handle)
    errors = validate(report, schema)
    if errors:
        for err in errors:
            print(f"INVALID {err}")
        return 1
    print(f"OK {args.report}: schema_version "
          f"{report.get('schema_version')}, "
          f"{report['totals']['billed_rows']} billed rows across "
          f"{len(report['stages'])} stages")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
