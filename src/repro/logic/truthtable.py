"""Packed truth tables for small-support Boolean functions.

Bit ``m`` of the table is ``f`` at the minterm whose binary encoding is ``m``
with variable 0 as the least-significant bit.  Tables are stored as numpy
``uint64`` words, so all Boolean operations, cofactors and support checks are
word-parallel.  Intended for supports up to ~22 variables — exactly the
regime of the paper's "conquering small functions" trick (threshold 18) and
of cut/cone resynthesis in the optimization passes.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.logic.cube import Cube
from repro.logic.sop import Sop

# Intra-word cofactor masks: _VAR_MASKS[i] has bit m set iff bit i of m is 1.
_VAR_MASKS = [
    np.uint64(0xAAAAAAAAAAAAAAAA),
    np.uint64(0xCCCCCCCCCCCCCCCC),
    np.uint64(0xF0F0F0F0F0F0F0F0),
    np.uint64(0xFF00FF00FF00FF00),
    np.uint64(0xFFFF0000FFFF0000),
    np.uint64(0xFFFFFFFF00000000),
]

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _num_words(num_vars: int) -> int:
    return 1 if num_vars <= 6 else 1 << (num_vars - 6)


class TruthTable:
    """A completely specified function of ``num_vars`` variables."""

    __slots__ = ("num_vars", "words")

    def __init__(self, num_vars: int, words: np.ndarray):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = int(num_vars)
        expected = _num_words(self.num_vars)
        words = np.asarray(words, dtype=np.uint64)
        if words.shape != (expected,):
            raise ValueError(
                f"expected {expected} words for {num_vars} vars, "
                f"got shape {words.shape}")
        self.words = self._masked(words)

    def _masked(self, words: np.ndarray) -> np.ndarray:
        """Zero the padding bits above 2^num_vars in a sub-word table."""
        if self.num_vars >= 6:
            return words
        keep = np.uint64((1 << (1 << self.num_vars)) - 1)
        out = words.copy()
        out[0] &= keep
        return out

    # -- construction ---------------------------------------------------------

    @classmethod
    def zeros(cls, num_vars: int) -> "TruthTable":
        return cls(num_vars, np.zeros(_num_words(num_vars), dtype=np.uint64))

    @classmethod
    def ones(cls, num_vars: int) -> "TruthTable":
        return cls(num_vars,
                   np.full(_num_words(num_vars), _ALL_ONES, dtype=np.uint64))

    @classmethod
    def variable(cls, var: int, num_vars: int) -> "TruthTable":
        """The projection function ``x_var``."""
        if not 0 <= var < num_vars:
            raise ValueError(f"variable {var} outside universe {num_vars}")
        words = np.zeros(_num_words(num_vars), dtype=np.uint64)
        if var < 6:
            words[:] = _VAR_MASKS[var]
        else:
            stride = 1 << (var - 6)
            idx = np.arange(words.shape[0])
            words[(idx // stride) % 2 == 1] = _ALL_ONES
        return cls(num_vars, words)

    @classmethod
    def from_minterms(cls, minterms: Iterable[int],
                      num_vars: int) -> "TruthTable":
        tt = cls.zeros(num_vars)
        words = tt.words.copy()
        for m in minterms:
            if not 0 <= m < (1 << num_vars):
                raise ValueError(f"minterm {m} out of range")
            words[m >> 6] |= np.uint64(1) << np.uint64(m & 63)
        return cls(num_vars, words)

    @classmethod
    def from_function(cls, fn: Callable[[Sequence[int]], int],
                      num_vars: int) -> "TruthTable":
        """Tabulate ``fn`` over all assignments (LSB = variable 0)."""
        minterms = []
        for m in range(1 << num_vars):
            bits = [(m >> v) & 1 for v in range(num_vars)]
            if fn(bits):
                minterms.append(m)
        return cls.from_minterms(minterms, num_vars)

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "TruthTable":
        """Tabulate from a length-2^n 0/1 sequence indexed by minterm."""
        n = (len(values) - 1).bit_length()
        if len(values) != 1 << n:
            raise ValueError("length must be a power of two")
        return cls.from_minterms(
            (m for m, v in enumerate(values) if v), n)

    @classmethod
    def from_sop(cls, sop: Sop) -> "TruthTable":
        out = cls.zeros(sop.num_vars)
        for cube in sop.cubes:
            term = cls.ones(sop.num_vars)
            for var, phase in cube.literals():
                lit = cls.variable(var, sop.num_vars)
                term &= lit if phase else ~lit
            out |= term
        return out

    @classmethod
    def random(cls, num_vars: int, rng: np.random.Generator) -> "TruthTable":
        words = rng.integers(0, 2 ** 64, size=_num_words(num_vars),
                             dtype=np.uint64)
        return cls(num_vars, words)

    # -- queries ---------------------------------------------------------------

    def get(self, minterm: int) -> int:
        if not 0 <= minterm < (1 << self.num_vars):
            raise ValueError(f"minterm {minterm} out of range")
        return int((self.words[minterm >> 6]
                    >> np.uint64(minterm & 63)) & np.uint64(1))

    def count_ones(self) -> int:
        from repro.logic.bitops import popcount

        return popcount(self.words)

    def is_zero(self) -> bool:
        return not self.words.any()

    def is_one(self) -> bool:
        return self == TruthTable.ones(self.num_vars)

    def minterms(self) -> List[int]:
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        return np.nonzero(bits[: 1 << self.num_vars])[0].tolist()

    def depends_on(self, var: int) -> bool:
        return self.cofactor(var, 1) != self.cofactor(var, 0)

    def support(self) -> List[int]:
        return [v for v in range(self.num_vars) if self.depends_on(v)]

    def evaluate_one(self, assignment: Sequence[int]) -> int:
        m = 0
        for var in range(self.num_vars):
            if assignment[var]:
                m |= 1 << var
        return self.get(m)

    # -- operations ------------------------------------------------------------

    def cofactor(self, var: int, phase: int) -> "TruthTable":
        """Cofactor, returned over the same variable universe."""
        if not 0 <= var < self.num_vars:
            raise ValueError(f"variable {var} outside universe")
        words = self.words
        if var < 6:
            mask = _VAR_MASKS[var]
            shift = np.uint64(1 << var)
            if phase:
                kept = words & mask
                out = kept | (kept >> shift)
            else:
                kept = words & ~mask
                out = kept | (kept << shift)
            return TruthTable(self.num_vars, out)
        stride = 1 << (var - 6)
        out = words.copy()
        idx = np.arange(words.shape[0])
        hi = (idx // stride) % 2 == 1
        if phase:
            out[~hi] = words[idx[~hi] + stride]
        else:
            out[hi] = words[idx[hi] - stride]
        return TruthTable(self.num_vars, out)

    def compose_permutation(self, perm: Sequence[int],
                            new_num_vars: int) -> "TruthTable":
        """Re-express over a new universe: old var ``v`` -> ``perm[v]``.

        Used to lift a cut-local truth table back into a cone universe and
        vice versa.  Every variable in the support must have a valid image
        (``perm[v] >= 0``); non-support variables may map to -1.
        """
        support = sorted(self.support())
        for v in support:
            if perm[v] < 0 or perm[v] >= new_num_vars:
                raise ValueError(f"support variable {v} has no valid image")
        # Each onset point, projected onto the support, becomes a cube over
        # the image variables (don't-care on all other new variables).
        seen = set()
        cubes = []
        for m in self.minterms():
            key = tuple((m >> v) & 1 for v in support)
            if key in seen:
                continue
            seen.add(key)
            cubes.append(Cube({perm[v]: bit for v, bit in zip(support, key)}))
        return TruthTable.from_sop(Sop(cubes, new_num_vars))

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.num_vars, self.words & other.words)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.num_vars, self.words | other.words)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.num_vars, self.words ^ other.words)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.num_vars, ~self.words)

    def _check(self, other: "TruthTable") -> None:
        if self.num_vars != other.num_vars:
            raise ValueError("truth tables over different universes")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return (self.num_vars == other.num_vars
                and bool(np.array_equal(self.words, other.words)))

    def __hash__(self) -> int:
        return hash((self.num_vars, self.words.tobytes()))

    def __repr__(self) -> str:
        if self.num_vars <= 6:
            return f"TruthTable({self.num_vars} vars, 0x{int(self.words[0]):x})"
        return f"TruthTable({self.num_vars} vars, {self.count_ones()} ones)"

    # -- two-level extraction ----------------------------------------------------

    def isop(self, max_cubes=None) -> Sop:
        """Irredundant SOP via the Minato-Morreale procedure.

        ``max_cubes`` aborts with :class:`IsopOverflow` once the cover
        exceeds the budget — callers that only want *small* covers (the
        refactor pass) use this to bail out of exponential functions.
        """
        worker = _IsopWorker(max_cubes)
        cubes = worker.run(self, self, list(range(self.num_vars)))
        return Sop(cubes, self.num_vars)


class IsopOverflow(RuntimeError):
    """The ISOP cover exceeded the requested cube budget."""


class _IsopWorker:
    """Memoized Minato-Morreale recursion with an optional cube budget."""

    def __init__(self, max_cubes: Optional[int]):
        self.max_cubes = max_cubes
        self.produced = 0
        self._cache: dict = {}

    def run(self, lower: "TruthTable", upper: "TruthTable",
            variables: List[int]) -> List[Cube]:
        key = (lower.words.tobytes(), upper.words.tobytes())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._compute(lower, upper, variables)
        self._cache[key] = result
        return result

    def _compute(self, lower: "TruthTable", upper: "TruthTable",
                 variables: List[int]) -> List[Cube]:
        if lower.is_zero():
            return []
        if upper.is_one():
            self._account(1)
            return [Cube.empty()]
        split = None
        for var in variables:
            if lower.depends_on(var) or upper.depends_on(var):
                split = var
                break
        if split is None:
            # Constant interval: both bounds are constant here.
            self._account(1)
            return [Cube.empty()]
        rest = [v for v in variables if v != split]
        l0, l1 = lower.cofactor(split, 0), lower.cofactor(split, 1)
        u0, u1 = upper.cofactor(split, 0), upper.cofactor(split, 1)
        # Cubes that must carry the negative / positive literal.
        c0 = self.run(l0 & ~u1, u0, rest)
        c1 = self.run(l1 & ~u0, u1, rest)
        tt0 = _cover_table(c0, lower.num_vars)
        tt1 = _cover_table(c1, lower.num_vars)
        # Remaining onset coverable without the split literal.
        l_star = (l0 & ~tt0) | (l1 & ~tt1)
        c_star = self.run(l_star, u0 & u1, rest)
        out = [c.with_literal(split, 0) for c in c0]
        out += [c.with_literal(split, 1) for c in c1]
        out += c_star
        self._account(len(out))
        return out

    def _account(self, n: int) -> None:
        self.produced += n
        if self.max_cubes is not None and self.produced > self.max_cubes:
            raise IsopOverflow(f"ISOP exceeded {self.max_cubes} cubes")


def _cover_table(cubes: List[Cube], num_vars: int) -> TruthTable:
    if not cubes:
        return TruthTable.zeros(num_vars)
    return TruthTable.from_sop(Sop(cubes, num_vars))
