#!/usr/bin/env python
"""Ablation study: what each design choice of the paper buys.

Runs the learner on a fixed mini-suite (one case per category) with one
knob disabled at a time and prints a size/accuracy/time delta table:

- preprocessing off        (the paper's own Sec. V ablation)
- uniform-only sampling    (Sec. IV-C's uneven-ratio observation)
- onset-only covers        (trick 2)
- exhaustion disabled      (trick 1)
- depth-first exploration  (the "explore evenly" guidance)
- optimization off         (Sec. IV-E)
- extension templates off  (our Sec. VI future-work families)

Run:  python examples/ablation_study.py [--budget 30]
"""

import argparse
import dataclasses
import time

import numpy as np

from repro.core.config import RegressorConfig
from repro.core.regressor import LogicRegressor
from repro.eval import accuracy, contest_test_patterns
from repro.oracle.suite import build_case

MINI_SUITE = ["case_16", "case_12", "case_13", "case_10"]

ABLATIONS = [
    ("baseline", {}),
    ("no-preprocessing", {"enable_preprocessing": False}),
    ("uniform-sampling", {"sampling_biases": (0.5,)}),
    ("onset-only", {"onset_offset_selection": False}),
    ("no-exhaustion", {"exhaustive_threshold": 0,
                       "subtree_exhaustive_threshold": 0}),
    ("depth-first", {"levelized": False}),
    ("no-optimization", {"enable_optimization": False}),
    ("no-extensions", {"enable_extended_templates": False,
                       "try_reversed_buses": False}),
]


def run_variant(label, overrides, budget):
    total_size = 0
    total_time = 0.0
    accs = []
    for case_id in MINI_SUITE:
        case = build_case(case_id)
        config = RegressorConfig(time_limit=budget, r_support=384,
                                 **overrides)
        t0 = time.monotonic()
        result = LogicRegressor(config).learn(case.oracle())
        total_time += time.monotonic() - t0
        total_size += result.gate_count
        patterns = contest_test_patterns(
            case.num_pis, total=9000, rng=np.random.default_rng(7))
        accs.append(accuracy(result.netlist, case.golden, patterns))
    mean_acc = sum(accs) / len(accs)
    return total_size, mean_acc, total_time


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=30.0)
    args = parser.parse_args()

    print(f"mini-suite: {', '.join(MINI_SUITE)} "
          f"(budget {args.budget:.0f}s per case)\n")
    header = (f"{'variant':18s} {'total size':>11s} {'mean acc%':>10s} "
              f"{'total time':>11s}")
    print(header)
    print("-" * len(header))
    baseline = None
    for label, overrides in ABLATIONS:
        size, acc, elapsed = run_variant(label, overrides, args.budget)
        marker = ""
        if label == "baseline":
            baseline = (size, acc)
        elif baseline:
            ds = size / max(1, baseline[0])
            da = (acc - baseline[1]) * 100
            marker = f"   (size x{ds:.1f}, acc {da:+.3f}pp)"
        print(f"{label:18s} {size:11d} {acc * 100:10.3f} "
              f"{elapsed:10.1f}s{marker}")


if __name__ == "__main__":
    main()
