"""Tests for the command-line interface."""

import io
import os

import numpy as np
import pytest

from repro.cli import load_circuit, main, save_circuit
from repro.network.builder import comparator
from repro.network.blif import write_blif
from repro.network.netlist import Netlist
from repro.sat import are_equivalent


@pytest.fixture
def circuit_file(tmp_path):
    net = Netlist("cmp")
    a = [net.add_pi(f"a[{i}]") for i in range(4)]
    b = [net.add_pi(f"b[{i}]") for i in range(4)]
    net.add_po("lt", comparator(net, "<", a, b))
    path = tmp_path / "cmp.blif"
    with open(path, "w") as handle:
        write_blif(net, handle)
    return str(path), net


class TestIo:
    def test_load_save_blif(self, circuit_file, tmp_path):
        path, net = circuit_file
        loaded = load_circuit(path)
        assert are_equivalent(net, loaded) is True
        out = str(tmp_path / "copy.blif")
        save_circuit(loaded, out)
        assert are_equivalent(net, load_circuit(out)) is True

    def test_save_load_aag(self, circuit_file, tmp_path):
        path, net = circuit_file
        out = str(tmp_path / "c.aag")
        save_circuit(load_circuit(path), out)
        assert are_equivalent(net, load_circuit(out)) is True

    def test_save_verilog(self, circuit_file, tmp_path):
        path, _ = circuit_file
        out = str(tmp_path / "c.v")
        save_circuit(load_circuit(path), out)
        assert open(out).read().startswith("module")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            load_circuit(str(tmp_path / "x.json"))


class TestCommands:
    def test_stats(self, circuit_file, capsys):
        path, _ = circuit_file
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "inputs  : 8" in out
        assert "outputs : 1" in out

    def test_learn_and_check(self, circuit_file, tmp_path, capsys):
        path, net = circuit_file
        learned = str(tmp_path / "learned.blif")
        code = main(["learn", path, "--out", learned,
                     "--time-limit", "15", "--patterns", "4000"])
        assert code == 0
        assert main(["check", path, learned]) == 0
        out = capsys.readouterr().out
        assert "EQUIVALENT" in out

    def test_learn_with_faults_and_checkpoint(self, circuit_file,
                                              tmp_path, capsys):
        path, _ = circuit_file
        ckpt = str(tmp_path / "run.ckpt")
        learned = str(tmp_path / "learned.blif")
        code = main(["learn", path, "--out", learned,
                     "--time-limit", "15", "--patterns", "2000",
                     "--inject-faults", "0.05", "--max-retries", "3",
                     "--checkpoint", ckpt, "--no-accuracy-gate"])
        assert code == 0
        assert os.path.exists(ckpt)
        assert load_circuit(learned).num_pos == 1
        capsys.readouterr()
        # Resume from the finished checkpoint: completed outputs skip.
        code = main(["learn", path, "--out", learned,
                     "--time-limit", "15", "--patterns", "2000",
                     "--checkpoint", ckpt, "--resume",
                     "--no-accuracy-gate"])
        assert code == 0

    def test_learn_writes_obs_artifacts(self, circuit_file, tmp_path,
                                        capsys):
        import json

        from repro.obs.report import REPORT_SCHEMA, validate

        path, _ = circuit_file
        trace = str(tmp_path / "t.jsonl")
        metrics = str(tmp_path / "m.json")
        report = str(tmp_path / "r.json")
        code = main(["learn", path, "--time-limit", "15",
                     "--patterns", "2000", "--no-accuracy-gate",
                     "--trace-out", trace, "--metrics-out", metrics,
                     "--report-out", report])
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        # JSONL trace: one JSON object per line.
        records = [json.loads(line)
                   for line in open(trace).read().splitlines()]
        assert any(r["type"] == "span" and r["name"] == "run"
                   for r in records)
        # Perfetto sibling is valid Chrome trace JSON.
        chrome = json.load(open(str(tmp_path / "t.trace.json")))
        assert chrome["traceEvents"]
        assert all({"ph", "ts", "name", "pid", "tid"} <= set(ev)
                   for ev in chrome["traceEvents"])
        # Metrics dump carries the billed-row counter.
        dump = json.load(open(metrics))
        assert "oracle.rows_billed" in dump["counters"]
        # Report validates and its stage table sums to the total.
        rep = json.load(open(report))
        assert validate(rep, REPORT_SCHEMA) == []
        assert sum(s["billed_rows"] for s in rep["stages"]) == \
            rep["totals"]["billed_rows"]
        assert rep["totals"]["accuracy"] is not None

    def test_learn_resume_requires_checkpoint(self, circuit_file):
        path, _ = circuit_file
        with pytest.raises(SystemExit):
            main(["learn", path, "--resume"])

    def test_learn_with_audit_and_verify(self, circuit_file, tmp_path,
                                         capsys):
        path, _ = circuit_file
        learned = str(tmp_path / "learned.blif")
        code = main(["learn", path, "--out", learned,
                     "--time-limit", "15", "--patterns", "2000",
                     "--audit-rate", "0.1", "--no-accuracy-gate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verification:" in out

    def test_chaos_subset(self, tmp_path, capsys):
        import json

        report = str(tmp_path / "chaos.json")
        code = main(["chaos", "--scenarios", "clean", "--seed", "2019",
                     "--out", report])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        dumped = json.load(open(report))
        assert dumped["passed"] is True
        assert [s["name"] for s in dumped["scenarios"]] == ["clean"]

    def test_chaos_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--scenarios", "does-not-exist"])

    def test_check_detects_difference(self, circuit_file, tmp_path,
                                      capsys):
        path, net = circuit_file
        other = Netlist("other")
        a = [other.add_pi(f"a[{i}]") for i in range(4)]
        b = [other.add_pi(f"b[{i}]") for i in range(4)]
        other.add_po("lt", comparator(other, "<=", a, b))
        other_path = str(tmp_path / "other.blif")
        with open(other_path, "w") as handle:
            write_blif(other, handle)
        assert main(["check", path, other_path]) == 1
        assert "NOT EQUIVALENT" in capsys.readouterr().out

    def test_optimize(self, circuit_file, tmp_path, capsys):
        path, net = circuit_file
        out_path = str(tmp_path / "opt.blif")
        assert main(["optimize", path, "--out", out_path,
                     "--time-limit", "10"]) == 0
        optimized = load_circuit(out_path)
        assert are_equivalent(net, optimized) is True
        assert optimized.gate_count() <= net.gate_count()


class TestLearnFlagValidation:
    @pytest.mark.parametrize("flags", [
        ["--jobs", "0"],
        ["--max-retries", "-1"],
        ["--audit-rate", "1.5"],
        ["--audit-rate", "-0.1"],
        ["--inject-faults", "1.0"],
        ["--time-limit", "0"],
        ["--patterns", "0"],
        ["--resume"],  # nonsensical without --checkpoint
    ])
    def test_bad_flags_exit_with_usage_error(self, circuit_file, flags,
                                             capsys):
        path, _ = circuit_file
        with pytest.raises(SystemExit) as excinfo:
            main(["learn", path, *flags])
        assert excinfo.value.code == 2  # argparse usage error
        err = capsys.readouterr().err
        assert "error:" in err

    def test_error_message_names_the_flag(self, circuit_file, capsys):
        path, _ = circuit_file
        with pytest.raises(SystemExit):
            main(["learn", path, "--audit-rate", "7"])
        assert "--audit-rate" in capsys.readouterr().err


class TestServiceCommands:
    def test_submit_drain_status_roundtrip(self, circuit_file, tmp_path,
                                           capsys):
        import json

        path, _ = circuit_file
        spool = str(tmp_path / "spool")
        assert main(["submit", "--spool", spool, path,
                     "--job-id", "cli-1", "--profile", "fast",
                     "--time-limit", "15", "--seed", "7"]) == 0
        assert capsys.readouterr().out.strip() == "cli-1"

        assert main(["serve", "--spool", spool, "--drain", "--inline",
                     "--timeout", "120", "--poll", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "[dispatch] cli-1" in out
        assert "drained:" in out

        assert main(["status", "--spool", spool, "cli-1",
                     "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["status"] in ("verified", "repaired")
        assert info["billed_rows"] > 0
        assert [row["attempt"] for row in info["billing"]] == [0]

        assert main(["status", "--spool", spool]) == 0
        assert "cli-1:" in capsys.readouterr().out

    def test_cancel_then_drain_marks_cancelled(self, circuit_file,
                                               tmp_path, capsys):
        path, _ = circuit_file
        spool = str(tmp_path / "spool")
        main(["submit", "--spool", spool, path, "--job-id", "cli-c",
              "--profile", "fast", "--time-limit", "15"])
        assert main(["cancel", "--spool", spool, "cli-c"]) == 0
        capsys.readouterr()
        assert main(["serve", "--spool", spool, "--drain", "--inline",
                     "--timeout", "60", "--poll", "0.01"]) == 0
        assert main(["status", "--spool", spool, "cli-c"]) == 0
        assert "cancelled" in capsys.readouterr().out

    def test_submit_rejects_invalid_spec(self, circuit_file, tmp_path):
        path, _ = circuit_file
        spool = str(tmp_path / "spool")
        with pytest.raises(SystemExit):
            main(["submit", "--spool", spool, path,
                  "--job-id", "bad", "--audit-rate", "2.0"])

    def test_submit_duplicate_id_rejected(self, circuit_file, tmp_path,
                                          capsys):
        path, _ = circuit_file
        spool = str(tmp_path / "spool")
        main(["submit", "--spool", spool, path, "--job-id", "dup"])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["submit", "--spool", spool, path, "--job-id", "dup"])

    def test_status_unknown_job_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["status", "--spool", str(tmp_path / "spool"),
                  "ghost"])

    def test_cancel_unknown_job_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cancel", "--spool", str(tmp_path / "spool"),
                  "ghost"])

    def test_serve_rejects_invalid_policy(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve", "--spool", str(tmp_path / "spool"),
                  "--max-active", "0", "--drain"])


class TestProfilerCli:
    def _learn_profiled(self, path, tmp_path, extra=()):
        profile = str(tmp_path / "profile.json")
        report = str(tmp_path / "report.json")
        code = main(["learn", path, "--time-limit", "15",
                     "--patterns", "2000", "--no-accuracy-gate",
                     "--profile-out", profile, "--report-out", report,
                     *extra])
        assert code == 0
        return profile, report

    def test_profile_out_writes_block_and_table(self, circuit_file,
                                                tmp_path, capsys):
        import json

        path, _ = circuit_file
        profile_path, report_path = self._learn_profiled(path, tmp_path)
        out = capsys.readouterr().out
        assert f"profile written to {profile_path}" in out
        assert "cost counters (deterministic):" in out
        profile = json.load(open(profile_path))
        assert set(profile) == {"counters", "self_time", "memory"}
        assert profile["counters"]
        # The run report embeds the identical block (schema v6).
        report = json.load(open(report_path))
        assert report["schema_version"] == 7
        assert report["profile"] == profile

    def test_profile_mem_adds_watermarks(self, circuit_file, tmp_path):
        import json

        path, _ = circuit_file
        profile_path, _ = self._learn_profiled(path, tmp_path,
                                               ["--profile-mem"])
        profile = json.load(open(profile_path))
        assert profile["memory"]
        assert all(peak > 0 for peak in profile["memory"].values())

    def test_prof_renders_report(self, circuit_file, tmp_path, capsys):
        path, _ = circuit_file
        _, report_path = self._learn_profiled(path, tmp_path)
        capsys.readouterr()
        assert main(["prof", report_path]) == 0
        out = capsys.readouterr().out
        assert "cost counters (deterministic):" in out
        assert "wall ms" in out

    def test_prof_errors_without_profile_block(self, circuit_file,
                                               tmp_path, capsys):
        path, _ = circuit_file
        report = str(tmp_path / "report.json")
        assert main(["learn", path, "--time-limit", "15",
                     "--patterns", "2000", "--no-accuracy-gate",
                     "--report-out", report]) == 0
        with pytest.raises(SystemExit, match="no profile block"):
            main(["prof", report])

    def test_bare_profile_flag_on_learn_is_ambiguous(self,
                                                     circuit_file,
                                                     capsys):
        # `learn --profile` could mean --profile-out or --profile-mem;
        # argparse must refuse rather than guess (and must never be
        # confused with submit's job-config --profile).
        path, _ = circuit_file
        with pytest.raises(SystemExit) as excinfo:
            main(["learn", path, "--profile", "x.json"])
        assert excinfo.value.code == 2
        assert "ambiguous" in capsys.readouterr().err


class TestSubmitProfileDisambiguation:
    def test_config_profile_alias_accepted(self, circuit_file,
                                           tmp_path, capsys):
        path, _ = circuit_file
        spool = str(tmp_path / "spool")
        assert main(["submit", "--spool", spool, path,
                     "--job-id", "alias-1",
                     "--config-profile", "fast"]) == 0
        assert capsys.readouterr().out.strip() == "alias-1"

    def test_conflicting_values_rejected(self, circuit_file, tmp_path,
                                         capsys):
        path, _ = circuit_file
        spool = str(tmp_path / "spool")
        with pytest.raises(SystemExit) as excinfo:
            main(["submit", "--spool", spool, path,
                  "--job-id", "clash", "--profile", "fast",
                  "--config-profile", "default"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--config-profile" in err and "--profile" in err

    def test_agreeing_values_accepted(self, circuit_file, tmp_path,
                                      capsys):
        path, _ = circuit_file
        spool = str(tmp_path / "spool")
        assert main(["submit", "--spool", spool, path,
                     "--job-id", "agree", "--profile", "fast",
                     "--config-profile", "fast"]) == 0
        assert capsys.readouterr().out.strip() == "agree"
