"""Query accounting across stacked oracle wrappers.

The execution layer stacks wrappers — typically ``BankedOracle`` over
``RetryingOracle`` over the caller's oracle — and *every* layer is an
:class:`~repro.oracle.base.Oracle` with its own ``query_count``.  Each
layer's ``query_count`` is the number of rows **requested of that
layer**; it says nothing about what reached the layers below.  The
single source of truth:

- **billed rows** = ``query_count`` of the *billing meter* — the oracle
  the caller handed to :meth:`LogicRegressor.learn` (marked with
  :func:`repro.obs.context.mark_billing`), or the bottom of the chain
  when nothing is marked.  Never sum ``query_count`` across layers.
- **cache-served rows** = rows a caching layer absorbed: the difference
  between what was requested of it and what it forwarded, surfaced
  directly as ``RetryingOracle.cache_hits`` and ``BankStats.hits``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.obs.context import is_billing


def oracle_chain(oracle: Any) -> Iterator[Any]:
    """Top-down iteration over a wrapper stack via ``.inner``."""
    seen = set()
    while oracle is not None and id(oracle) not in seen:
        seen.add(id(oracle))
        yield oracle
        oracle = getattr(oracle, "inner", None)


def billing_meter(oracle: Any) -> Any:
    """The layer whose ``query_count`` is the billed-row total.

    Prefers the explicitly marked layer (survives pickling to worker
    shards); falls back to the bottom of the chain, which for an
    unwrapped oracle is the oracle itself.
    """
    chain = list(oracle_chain(oracle))
    for layer in chain:
        if is_billing(layer):
            return layer
    return chain[-1]


def billed_rows(oracle: Any) -> int:
    """Rows actually billed by the stack ``oracle`` fronts."""
    return billing_meter(oracle).query_count


def accounting_summary(oracle: Any,
                       metrics: Optional[Any] = None) -> Dict[str, Any]:
    """Requested / billed / cache-absorbed rows for a wrapper stack.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`, usually
    ``result.instrumentation.metrics``) additionally surfaces the billed
    batch-size distribution — count plus p50/p95/p99 estimated from the
    ``oracle.batch_rows`` histogram buckets.
    """
    chain = list(oracle_chain(oracle))
    layers: List[Dict[str, Any]] = []
    cached = 0
    for layer in chain:
        entry: Dict[str, Any] = {
            "layer": type(layer).obs_layer
            if hasattr(type(layer), "obs_layer") else "oracle",
            "class": type(layer).__name__,
            "rows_requested": layer.query_count,
        }
        hits = getattr(layer, "cache_hits", None)
        if hits is None:
            bank = getattr(layer, "bank", None)
            if bank is not None:
                hits = bank.stats.hits
        if hits is not None:
            entry["rows_cached"] = int(hits)
            cached += int(hits)
        counters = getattr(layer, "counters", None)
        by_kind = getattr(counters, "by_kind", None)
        if by_kind is not None:
            # A fault-injecting layer (FaultyOracle): per-family totals.
            entry["faults_injected"] = {k: int(v)
                                        for k, v in sorted(by_kind.items())}
        audit_dict = getattr(counters, "as_dict", None)
        if audit_dict is not None and hasattr(counters, "rows_audited"):
            entry["audit"] = audit_dict()
        layers.append(entry)
    summary = {
        "rows_requested": chain[0].query_count,
        "rows_billed": billing_meter(oracle).query_count,
        "rows_cached": cached,
        "layers": layers,
    }
    if metrics is not None:
        hist = getattr(metrics, "_histograms", {}).get(
            "oracle.batch_rows")
        if hist is not None and hist.total_count() > 0:
            summary["batch_rows"] = hist.summary()
    return summary
