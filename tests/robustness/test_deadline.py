"""The hierarchical deadline manager."""

import pytest

from repro.robustness.deadline import Deadline, DeadlineManager


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestDeadline:
    def test_soft_and_hard_tiers(self):
        clock = FakeClock()
        dl = Deadline(soft=105.0, hard=110.0, clock=clock)
        assert dl.remaining() == pytest.approx(5.0)
        assert dl.hard_remaining() == pytest.approx(10.0)
        assert not dl.expired()
        clock.advance(6.0)
        assert dl.expired() and not dl.hard_expired()
        clock.advance(5.0)
        assert dl.hard_expired()

    def test_hard_defaults_to_soft(self):
        dl = Deadline(soft=105.0, clock=FakeClock())
        assert dl.hard == dl.soft

    def test_hard_before_soft_rejected(self):
        with pytest.raises(ValueError):
            Deadline(soft=105.0, hard=104.0, clock=FakeClock())


class TestDeadlineManager:
    def manager(self, clock, limit=100.0):
        return DeadlineManager(limit, preprocessing_fraction=0.15,
                               optimize_fraction=0.2, hard_slack=1.5,
                               clock=clock)

    def test_budget_split(self):
        clock = FakeClock(0.0)
        dm = self.manager(clock)
        assert dm.overall.soft == pytest.approx(100.0)
        assert dm.preprocessing.soft == pytest.approx(15.0)
        assert dm.tree.soft == pytest.approx(80.0)  # optimize reserve

    def test_output_slice_fair_share(self):
        clock = FakeClock(0.0)
        dm = self.manager(clock)
        # Four outputs share the 80 s tree budget equally.
        first = dm.output_slice(0, 4)
        assert first.soft == pytest.approx(20.0)
        assert first.hard == pytest.approx(30.0)  # 1.5x slack

    def test_underrun_donates_to_later_outputs(self):
        clock = FakeClock(0.0)
        dm = self.manager(clock)
        clock.advance(4.0)  # output 0 finished early
        nxt = dm.output_slice(1, 4)
        assert nxt.soft == pytest.approx(4.0 + 76.0 / 3)

    def test_slack_never_crosses_tree_deadline(self):
        clock = FakeClock(0.0)
        dm = self.manager(clock)
        clock.advance(79.0)  # one second of tree budget left
        last = dm.output_slice(3, 4)
        assert last.hard <= dm.tree.hard + 1e-9

    def test_past_tree_deadline_collapses_to_flush_only(self):
        clock = FakeClock(0.0)
        dm = self.manager(clock)
        clock.advance(95.0)
        dl = dm.output_slice(0, 2)
        assert dl.expired() and dl.hard_expired()

    def test_optimize_budget_reserved_and_floored(self):
        clock = FakeClock(0.0)
        dm = self.manager(clock)
        clock.advance(80.0)
        assert dm.optimize_budget() == pytest.approx(20.0)
        clock.advance(100.0)  # way past the overall deadline
        assert dm.optimize_budget() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineManager(0.0)
        with pytest.raises(ValueError):
            DeadlineManager(10.0, preprocessing_fraction=0.6,
                            optimize_fraction=0.5)
        with pytest.raises(ValueError):
            DeadlineManager(10.0, hard_slack=0.5)
        with pytest.raises(ValueError):
            DeadlineManager(10.0).output_slice(2, 2)
