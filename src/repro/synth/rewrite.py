"""Cut-based local rewriting (ABC's ``rewrite``).

For every AND node the pass enumerates its 4-feasible cuts, resynthesizes
each cut function through exact two-level minimization plus quick factoring,
and keeps whichever implementation — including the direct translation —
adds the fewest nodes to the rebuilt AIG.  Structural hashing makes reuse of
already-built logic free, which is where the size wins come from.

With ``exact=True`` each cut function is additionally resynthesized by
SAT-based exact synthesis, cached per NPN class — the same library trick
ABC's rewrite plays with its precomputed 4-input networks, except our
"library" is computed on demand by :mod:`repro.synth.exact`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.aig.aig import Aig, lit_not
from repro.aig.cuts import Cut, enumerate_cuts
from repro.logic.npn import invert, npn_canon
from repro.logic.truthtable import TruthTable
from repro.synth.rebuild import (best_two_level, build_factored, copy_pos,
                                 identity_map, map_lit)

# Resynthesized implementations of cut functions, keyed by (k, table).
_SYNTH_CACHE: Dict = {}
# Exact chains per (k, NPN-representative table); None = search gave up.
_EXACT_CACHE: Dict = {}


def _implementation(k: int, table: int):
    key = (k, table)
    cached = _SYNTH_CACHE.get(key)
    if cached is None:
        tt = TruthTable(k, np.array([table], dtype=np.uint64)) if k <= 6 \
            else None
        if tt is None:
            raise ValueError("rewrite cuts are limited to 6 leaves")
        cached = best_two_level(tt)
        _SYNTH_CACHE[key] = cached
    return cached


def _exact_implementation(k: int, table: int):
    """Exact chain + the NPN transform needed to instantiate it.

    Returns ``(chain, inverse_transform)`` or None.  The chain realizes
    the NPN representative; the inverse transform says how to wire the
    concrete cut leaves into it (see :func:`_build_exact`).
    """
    from repro.synth.exact import exact_synthesis

    if k > 4:
        return None
    rep, transform = npn_canon(table, k)
    cached = _EXACT_CACHE.get((k, rep))
    if cached is None:
        chain = exact_synthesis(rep, k, max_gates=6,
                                max_conflicts_per_size=8000)
        _EXACT_CACHE[(k, rep)] = chain if chain is not None else "none"
        cached = _EXACT_CACHE[(k, rep)]
    if cached == "none":
        return None
    return cached, transform


def _build_exact(new: Aig, chain, transform, leaf_lits: List[int],
                 k: int) -> int:
    """Instantiate the representative's chain for a concrete cut.

    From ``transform.apply``: ``rep(m) = table(src) ^ out_phase`` with
    ``src[perm[t]] = m[t] ^ phase[perm[t]]``.  Solving for ``table(y)``:
    feed chain input ``t`` with leaf ``perm[t]`` xored by
    ``phase[perm[t]]`` and complement the output by ``out_phase``.
    """
    wired = [0] * k
    for t in range(k):
        src_var = transform.perm[t]
        lit = leaf_lits[src_var]
        if (transform.input_phases >> src_var) & 1:
            lit = lit_not(lit)
        wired[t] = lit
    out = chain.build_into(new, wired)
    if transform.output_phase:
        out = lit_not(out)
    return out


def rewrite(aig: Aig, k: int = 4, max_cuts: int = 8,
            exact: bool = False) -> Aig:
    """Return a rewritten, strashed copy.

    ``exact=True`` additionally tries SAT-based exact synthesis per cut
    function (NPN-cached); slower on first sight of each class, optimal
    node counts afterwards.
    """
    cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts)
    reachable = aig.reachable()
    new = Aig(pi_names=list(aig.pi_names))
    lit_map = identity_map(aig, new)
    # Cut leaves of a reachable node are in its TFI, hence reachable too,
    # so skipping unreachable nodes entirely is safe.
    for n in sorted(reachable):
        lit_map[n] = _best_node_impl(aig, new, lit_map, n, cuts[n],
                                     exact=exact)
    copy_pos(aig, new, lit_map)
    return new


def _best_node_impl(aig: Aig, new: Aig, lit_map: Dict[int, int],
                    node: int, node_cuts: List[Cut],
                    exact: bool = False) -> int:
    # Direct translation first: its cost is the baseline.
    f0, f1 = aig.fanins(node)
    before = new.num_nodes
    direct = new.and_(map_lit(lit_map, f0), map_lit(lit_map, f1))
    best_lit = direct
    best_cost = new.num_nodes - before
    if best_cost == 0:
        return best_lit  # already exists; nothing can beat free
    for cut in node_cuts:
        if len(cut.leaves) <= 1:
            continue  # trivial cut is the node itself
        leaf_lits = [map_lit(lit_map, 2 * leaf) for leaf in cut.leaves]
        impl = _implementation(len(cut.leaves), cut.table)
        if impl is not None:
            expr, complemented = impl
            before = new.num_nodes
            candidate = build_factored(new, expr, leaf_lits)
            if complemented:
                candidate = lit_not(candidate)
            cost = new.num_nodes - before
            if cost < best_cost:
                best_cost = cost
                best_lit = candidate
        if exact and best_cost > 0:
            hit = _exact_implementation(len(cut.leaves), cut.table)
            if hit is not None:
                chain, transform = hit
                before = new.num_nodes
                candidate = _build_exact(new, chain, transform, leaf_lits,
                                         len(cut.leaves))
                cost = new.num_nodes - before
                if cost < best_cost:
                    best_cost = cost
                    best_lit = candidate
        if best_cost == 0:
            break
    return best_lit
