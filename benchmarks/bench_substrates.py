"""Substrate throughput benches: simulation, SAT, BDD, minimization.

These quantify the engineering that makes the paper's sampling volumes
feasible in Python — bit-parallel simulation is the load-bearing wall —
and track the SAT/BDD/minimizer costs the synthesis passes lean on.
"""

import numpy as np
import pytest

from benchmarks.conftest import one_shot
from repro.logic.bdd import Bdd
from repro.logic.minimize import quine_mccluskey
from repro.logic.sop import Sop
from repro.logic.truthtable import TruthTable
from repro.network.builder import ripple_add
from repro.network.netlist import Netlist
from repro.network.simulate import simulate
from repro.oracle.eco import build_eco_netlist
from repro.sat import are_equivalent
from repro.sat.solver import Solver, SolveResult


def test_simulation_throughput(benchmark):
    """Patterns/second through a 500-gate netlist (the oracle hot path)."""
    net = build_eco_netlist(64, 8, seed=1, support_low=6,
                            support_high=12, gates_per_output=30)
    rng = np.random.default_rng(0)
    pats = rng.integers(0, 2, (100000, 64)).astype(np.uint8)

    out = benchmark(simulate, net, pats)
    assert out.shape == (100000, 8)
    benchmark.extra_info.update(
        gates=net.gate_count(),
        patterns_per_call=100000)


def test_sat_pigeonhole(benchmark):
    """PHP(7,6): a classic hard-UNSAT instance for CDCL."""
    def build_and_solve():
        def var(i, j):
            return i * 6 + j + 1

        s = Solver()
        for i in range(7):
            s.add_clause([var(i, j) for j in range(6)])
        for j in range(6):
            for i1 in range(7):
                for i2 in range(i1 + 1, 7):
                    s.add_clause([-var(i1, j), -var(i2, j)])
        return s.solve(), s.num_conflicts

    result, conflicts = one_shot(benchmark, build_and_solve)
    assert result is SolveResult.UNSAT
    benchmark.extra_info["conflicts"] = conflicts


def test_sat_adder_equivalence(benchmark):
    """Miter UNSAT proof for two 12-bit adders (the fraig workload)."""
    def build(order):
        net = Netlist(f"add{order}")
        a = [net.add_pi(f"a{i}") for i in range(12)]
        b = [net.add_pi(f"b{i}") for i in range(12)]
        args = (a, b) if order else (b, a)
        for i, s in enumerate(ripple_add(net, *args, 12)):
            net.add_po(f"s{i}", s)
        return net

    left, right = build(True), build(False)
    verdict = one_shot(benchmark, are_equivalent, left, right)
    assert verdict is True


def test_bdd_adder_msb(benchmark):
    """BDD build of a 10-bit adder MSB (quadratic-size function)."""
    def run():
        bdd = Bdd(20)
        # Interleaved order keeps the adder polynomial.
        a = [bdd.variable(2 * i) for i in range(10)]
        b = [bdd.variable(2 * i + 1) for i in range(10)]
        carry = bdd.ZERO
        s = bdd.ZERO
        for i in range(10):
            axb = bdd.apply_xor(a[i], b[i])
            s = bdd.apply_xor(axb, carry)
            carry = bdd.apply_or(bdd.apply_and(a[i], b[i]),
                                 bdd.apply_and(axb, carry))
        return bdd, s

    bdd, s = one_shot(benchmark, run)
    benchmark.extra_info["nodes"] = bdd.node_count(s)
    assert bdd.node_count(s) > 10


def test_qm_8var(benchmark):
    """Quine-McCluskey on a random dense 8-variable onset."""
    rng = np.random.default_rng(5)
    onset = sorted(int(m) for m in
                   rng.choice(256, size=100, replace=False))

    cover = benchmark(quine_mccluskey, onset, 8)
    got = set(TruthTable.from_sop(cover).minterms())
    assert got == set(onset)
    benchmark.extra_info["cubes"] = len(cover)


def test_lut_mapping(benchmark):
    """4-LUT mapping of a learned-scale circuit."""
    from repro.aig.aig import Aig
    from repro.synth.lutmap import map_luts

    net = build_eco_netlist(32, 6, seed=2, support_low=5,
                            support_high=10, gates_per_output=20)
    aig = Aig.from_netlist(net)

    mapping = benchmark(map_luts, aig, 4)
    assert 0 < mapping.num_luts < aig.size()
    benchmark.extra_info.update(ands=aig.size(), luts=mapping.num_luts,
                                depth=mapping.depth)


def test_isop_12var(benchmark):
    """ISOP extraction on a structured 12-variable function."""
    tt = TruthTable.from_function(
        lambda b: (sum(b[:6]) > 3) or (b[6] and b[11]), 12)

    cover = benchmark(lambda: tt.isop())
    assert TruthTable.from_sop(cover) == tt
    benchmark.extra_info["cubes"] = len(cover)
