"""Noise-robustness bench: learning from a fallible teacher.

The paper scopes itself to deterministic, error-free black boxes (Sec. I
explicitly cites fallible-teacher models as out of scope).  This bench
probes that boundary: accuracy of the learned circuit against the *clean*
golden function as the oracle's output-flip probability grows.  The
sampled-constancy leaf tests plus the early-stopping epsilon give the
learner a natural noise margin.
"""

import numpy as np
import pytest

from benchmarks.conftest import one_shot
from repro.core.config import fast_config
from repro.core.regressor import LogicRegressor
from repro.eval import accuracy, contest_test_patterns
from repro.oracle.eco import build_eco_netlist
from repro.oracle.netlist_oracle import NetlistOracle
from repro.oracle.noisy import NoisyOracle


@pytest.mark.parametrize("noise", [0.0, 0.005, 0.02])
def test_accuracy_vs_noise(benchmark, noise):
    golden = build_eco_netlist(20, 4, seed=21, support_low=3,
                               support_high=7)

    def run():
        oracle = NoisyOracle(NetlistOracle(golden), noise, seed=9)
        cfg = fast_config(time_limit=20, leaf_epsilon=0.08)
        result = LogicRegressor(cfg).learn(oracle)
        pats = contest_test_patterns(20, total=8000,
                                     rng=np.random.default_rng(1))
        return result, accuracy(result.netlist, golden, pats)

    result, acc = one_shot(benchmark, run)
    benchmark.extra_info.update(noise=noise, size=result.gate_count,
                                accuracy=round(acc * 100, 3))
    if noise == 0.0:
        assert acc == 1.0
    else:
        # The corrupted bits concentrate in whatever subspace the hash
        # hits, so the per-seed accuracy has real variance; the bench
        # records the exact value in extra_info and asserts a floor.
        assert acc > 0.7


def test_epsilon_under_channel_noise(benchmark):
    """Measure trick 3's epsilon under non-deterministic channel noise.

    Majority leaf votes and subtree conquest already absorb most mild
    noise, so this records the eps=0 vs eps=0.08 accuracies rather than
    asserting a direction; both must stay comfortably above the damage a
    1% channel would do to a memorizing learner.
    """
    golden = build_eco_netlist(16, 2, seed=22, support_low=3,
                               support_high=6)

    def acc_with(eps):
        oracle = NoisyOracle(NetlistOracle(golden), 0.01, seed=10,
                             deterministic=False)
        cfg = fast_config(time_limit=15, leaf_epsilon=eps,
                          exhaustive_threshold=0)
        result = LogicRegressor(cfg).learn(oracle)
        pats = contest_test_patterns(16, total=8000,
                                     rng=np.random.default_rng(2))
        return accuracy(result.netlist, golden, pats)

    def run():
        return acc_with(0.0), acc_with(0.08)

    strict, tolerant = one_shot(benchmark, run)
    benchmark.extra_info.update(eps0_acc=round(strict * 100, 3),
                                eps8_acc=round(tolerant * 100, 3))
    assert strict > 0.9 and tolerant > 0.9
