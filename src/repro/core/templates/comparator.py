"""Comparator template matching (Sec. IV-B1, Table I).

Hypotheses tested per single-bit output: ``z = N_v1 <> N_v2`` over pairs of
input buses, and ``z = N_v1 <> b`` against a constant.  Ordered-predicate
constants are recovered by binary search on a controlled probe (we own the
inputs, so ``N_v1`` can be set directly); equality constants are read off a
witnessing sample.  If no direct match exists, a propagation-cube search
fixes the non-bus inputs to random contexts until the predicate becomes
observable at the output (the buried-comparator scenario of Fig. 3).

Ordered predicates are canonicalized: ``N < t`` subsumes ``N <= t-1`` and
``N >= t`` subsumes ``N > t-1`` — black-box behaviour cannot distinguish
the members of each pair, so one canonical form per threshold is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.grouping import BusGroup, Grouping
from repro.core.sampling import random_patterns
from repro.logic.cube import Cube
from repro.oracle.base import Oracle

PREDICATES = ("==", "!=", "<", "<=", ">", ">=")

_PRED_FN = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class ComparatorMatch:
    """A confirmed comparator hypothesis for one output bit."""

    output: int
    predicate: str
    left: BusGroup
    right: Optional[BusGroup]  # None for a constant comparison
    constant: Optional[int]
    propagation_cube: Optional[Cube]  # None when directly observable

    @property
    def buried(self) -> bool:
        return self.propagation_cube is not None

    def evaluate_ints(self, n_left: np.ndarray,
                      n_right_or_const) -> np.ndarray:
        return _PRED_FN[self.predicate](n_left, n_right_or_const) \
            .astype(np.uint8)

    def describe(self) -> str:
        rhs = self.right.stem if self.right is not None else str(self.constant)
        where = " (buried)" if self.buried else ""
        return f"N_{self.left.stem} {self.predicate} {rhs}{where}"


def match_comparator(oracle: Oracle, grouping: Grouping, output: int,
                     rng: np.random.Generator, num_samples: int = 192,
                     propagation_tries: int = 0
                     ) -> Optional[ComparatorMatch]:
    """Try to explain output ``output`` as a comparator over input buses."""
    buses = grouping.buses
    if not buses:
        return None
    # Direct (unconstrained) matching first.
    match = _match_under_cube(oracle, buses, output, rng, num_samples,
                              cube=None)
    if match is not None:
        return match
    # Buried comparator: search for a propagation cube on the other PIs.
    for _ in range(propagation_tries):
        bus_pair = _random_bus_subset(buses, rng)
        positions = set()
        for bus in bus_pair:
            positions.update(bus.positions)
        context_vars = [i for i in range(oracle.num_pis)
                        if i not in positions]
        if not context_vars:
            continue
        bits = rng.integers(0, 2, size=len(context_vars))
        cube = Cube({v: int(b) for v, b in zip(context_vars, bits)})
        match = _match_under_cube(oracle, list(bus_pair), output, rng,
                                  num_samples, cube=cube)
        if match is not None:
            return match
    return None


def _random_bus_subset(buses: List[BusGroup],
                       rng: np.random.Generator) -> Tuple[BusGroup, ...]:
    if len(buses) == 1:
        return (buses[0],)
    if len(buses) == 2:
        return tuple(buses)
    picks = rng.choice(len(buses), size=2, replace=False)
    return tuple(buses[i] for i in picks)


def _match_under_cube(oracle: Oracle, buses: List[BusGroup], output: int,
                      rng: np.random.Generator, num_samples: int,
                      cube: Optional[Cube]) -> Optional[ComparatorMatch]:
    samples = random_patterns(num_samples, oracle.num_pis, rng,
                              biases=(0.5,), cube=cube)
    out = oracle.query(samples)[:, output]
    # Bus-vs-bus hypotheses.
    for a_idx in range(len(buses)):
        for b_idx in range(len(buses)):
            if a_idx == b_idx:
                continue
            left, right = buses[a_idx], buses[b_idx]
            hit = _test_pair(oracle, left, right, output, out, samples,
                             rng, cube)
            if hit is not None:
                return ComparatorMatch(output, hit, left, right, None,
                                       cube)
    # Bus-vs-constant hypotheses.
    for bus in buses:
        hit = _test_constant(oracle, bus, output, out, samples, rng, cube)
        if hit is not None:
            predicate, constant = hit
            return ComparatorMatch(output, predicate, bus, None, constant,
                                   cube)
    return None


def _test_pair(oracle: Oracle, left: BusGroup, right: BusGroup,
               output: int, out: np.ndarray, samples: np.ndarray,
               rng: np.random.Generator,
               cube: Optional[Cube]) -> Optional[str]:
    """Confirm one of the six predicates between two buses, or None."""
    n_left = left.decode_batch(samples)
    n_right = right.decode_batch(samples)
    # Random samples almost never produce equality on wide buses; add
    # targeted probes with the buses forced equal and forced adjacent.
    probes = random_patterns(32, oracle.num_pis, rng, (0.5,), cube)
    width = min(left.width, right.width)
    for row in range(probes.shape[0]):
        value = int(rng.integers(0, 1 << width))
        for pos, bit in left.encode(_clip(value, left.width)).items():
            probes[row, pos] = bit
        forced = value if row % 2 == 0 else _clip(value + 1, right.width)
        for pos, bit in right.encode(forced).items():
            probes[row, pos] = bit
    probe_out = oracle.query(probes)[:, output]
    all_out = np.concatenate([out, probe_out])
    all_left = np.concatenate([n_left, left.decode_batch(probes)])
    all_right = np.concatenate([n_right, right.decode_batch(probes)])
    if all_out.min() == all_out.max():
        return None  # constant output cannot certify a predicate
    for predicate in PREDICATES:
        expect = _PRED_FN[predicate](all_left, all_right)
        if np.array_equal(expect.astype(np.uint8), all_out):
            return predicate
    return None


def _clip(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def _test_constant(oracle: Oracle, bus: BusGroup, output: int,
                   out: np.ndarray, samples: np.ndarray,
                   rng: np.random.Generator,
                   cube: Optional[Cube]) -> Optional[Tuple[str, int]]:
    """Confirm ``z = N_bus <> b`` for some constant, or None.

    Thresholds come from binary search on a controlled probe; equality
    constants are read off a witnessing sample.
    """
    n_bus = bus.decode_batch(samples)
    candidates: List[Tuple[str, int]] = []
    zeros = out == 0
    ones = out == 1
    context = random_patterns(1, oracle.num_pis, rng, (0.5,), cube)[0]

    def probe(values: Sequence[int]) -> np.ndarray:
        block = np.tile(context, (len(values), 1))
        for row, value in enumerate(values):
            for pos, bit in bus.encode(value).items():
                block[row, pos] = bit
        return oracle.query(block)[:, output]

    if bus.width <= 16:
        # We own the inputs: a dense sweep of all 2^w bus values under one
        # context identifies any constant comparison exactly and cheaply
        # (the batched oracle answers 65k queries in one call).
        sweep = probe(list(range(1 << bus.width)))
        candidates.extend(_candidates_from_sweep(sweep))
    elif ones.any() and zeros.any():
        # Wide bus: binary search the threshold (ordered predicates) and
        # read equality constants off witnessing samples, as the paper
        # describes.
        lo_val, hi_val = 0, (1 << bus.width) - 1
        z_ends = probe([lo_val, hi_val])
        if z_ends[0] != z_ends[1]:
            threshold = _binary_search_flip(probe, lo_val, hi_val,
                                            int(z_ends[0]))
            if z_ends[0] == 1:
                candidates.append(("<", threshold))
            else:
                candidates.append((">=", threshold))
        if ones.sum() <= max(3, len(out) // 8):
            witness = np.unique(n_bus[ones])
            if witness.shape[0] == 1:
                candidates.append(("==", int(witness[0])))
        if zeros.sum() <= max(3, len(out) // 8):
            witness = np.unique(n_bus[zeros])
            if witness.shape[0] == 1:
                candidates.append(("!=", int(witness[0])))
    else:
        return None
    for predicate, constant in candidates:
        if _verify_constant(oracle, bus, output, predicate, constant, rng,
                            cube):
            return predicate, constant
    return None


def _candidates_from_sweep(sweep: np.ndarray) -> List[Tuple[str, int]]:
    """Constant-comparison hypotheses from an exhaustive value sweep."""
    ones = np.nonzero(sweep == 1)[0]
    zeros = np.nonzero(sweep == 0)[0]
    if ones.shape[0] == 0 or zeros.shape[0] == 0:
        return []
    out: List[Tuple[str, int]] = []
    if ones.shape[0] == 1:
        out.append(("==", int(ones[0])))
    if zeros.shape[0] == 1:
        out.append(("!=", int(zeros[0])))
    # Contiguous prefix of 1s -> N < t; contiguous suffix of 1s -> N >= t.
    first_one, last_one = int(ones[0]), int(ones[-1])
    if last_one - first_one + 1 == ones.shape[0]:
        if first_one == 0:
            out.append(("<", last_one + 1))
        elif last_one == sweep.shape[0] - 1:
            out.append((">=", first_one))
    return out


def _binary_search_flip(probe, lo: int, hi: int, lo_value: int) -> int:
    """First value whose probe differs from ``probe(lo)``.

    Assumes a single monotone flip between lo and hi (verified later)."""
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if int(probe([mid])[0]) == lo_value:
            lo = mid
        else:
            hi = mid
    return hi


def _verify_constant(oracle: Oracle, bus: BusGroup, output: int,
                     predicate: str, constant: int,
                     rng: np.random.Generator, cube: Optional[Cube],
                     num_samples: int = 128) -> bool:
    """Fresh-sample verification, including boundary probes b-1, b, b+1."""
    samples = random_patterns(num_samples, oracle.num_pis, rng,
                              biases=(0.5, 0.2, 0.8), cube=cube)
    boundary = [constant - 1, constant, constant + 1]
    row = 0
    for value in boundary:
        if 0 <= value < (1 << bus.width) and row < samples.shape[0]:
            for pos, bit in bus.encode(value).items():
                samples[row, pos] = bit
            row += 1
    out = oracle.query(samples)[:, output]
    n_bus = bus.decode_batch(samples)
    expect = _PRED_FN[predicate](n_bus, constant).astype(np.uint8)
    return bool(np.array_equal(expect, out))
