"""Text-table rendering of experiment results (Table II style)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.eval.harness import CaseResult


def format_table(results: Sequence[CaseResult],
                 include_paper: bool = True) -> str:
    """Render results grouped by case, learners as column groups.

    Mirrors Table II's layout: one row per case, a (size, accuracy, time)
    column triple per learner, with the paper's "Ours" reference columns
    appended when available.
    """
    learners: List[str] = []
    for r in results:
        if r.learner not in learners:
            learners.append(r.learner)
    by_case: Dict[str, Dict[str, CaseResult]] = {}
    case_order: List[str] = []
    for r in results:
        if r.case_id not in by_case:
            by_case[r.case_id] = {}
            case_order.append(r.case_id)
        by_case[r.case_id][r.learner] = r

    header = f"{'case':10s} {'type':5s} {'PI':>4s} {'PO':>4s}"
    for name in learners:
        header += f" | {name + ' size':>12s} {'acc%':>8s} {'time':>7s}"
    if include_paper:
        header += f" | {'paper size':>10s} {'paper acc%':>10s}"
    lines = [header, "-" * len(header)]
    for case_id in case_order:
        first = next(iter(by_case[case_id].values()))
        line = (f"{case_id:10s} {first.category:5s} {first.num_pis:4d} "
                f"{first.num_pos:4d}")
        for name in learners:
            r = by_case[case_id].get(name)
            if r is None:
                line += f" | {'-':>12s} {'-':>8s} {'-':>7s}"
            else:
                line += (f" | {r.size:12d} {r.accuracy * 100:8.3f} "
                         f"{r.time:7.1f}")
        if include_paper:
            ps = first.paper_size
            pa = first.paper_accuracy
            line += (f" | {ps if ps is not None else '-':>10} "
                     f"{f'{pa:.3f}' if pa is not None else '-':>10}")
        lines.append(line)
    return "\n".join(lines)


def summarize_by_category(results: Sequence[CaseResult]) -> str:
    """Per-category means per learner (the paper's narrative comparison)."""
    groups: Dict[tuple, List[CaseResult]] = {}
    for r in results:
        groups.setdefault((r.category, r.learner), []).append(r)
    lines = [f"{'type':6s} {'learner':18s} {'mean size':>10s} "
             f"{'mean acc%':>10s} {'pass(>=99.99%)':>15s}"]
    for (category, learner) in sorted(groups):
        rs = groups[(category, learner)]
        mean_size = sum(r.size for r in rs) / len(rs)
        mean_acc = sum(r.accuracy for r in rs) / len(rs) * 100
        passed = sum(1 for r in rs if r.meets_contest_bar)
        lines.append(f"{category:6s} {learner:18s} {mean_size:10.0f} "
                     f"{mean_acc:10.3f} {passed:8d}/{len(rs)}")
    return "\n".join(lines)
