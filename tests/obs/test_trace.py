"""Tracer: span nesting, JSONL round-trip, Chrome export, adoption."""

import json

import pytest

from repro.obs.trace import Span, Tracer, export_trace


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt


class TestSpanNesting:
    def test_parent_child_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        records = tracer.to_records()
        # Emission order: children close before parents.
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner_rec, outer_rec = records
        assert inner_rec["parent"] == outer_rec["id"]
        assert outer_rec["parent"] is None

    def test_current_tracks_stack(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_open_spans_excluded_from_export(self):
        tracer = Tracer(clock=FakeClock())
        cm = tracer.span("open")
        cm.__enter__()
        assert tracer.to_records() == []
        cm.__exit__(None, None, None)
        assert len(tracer.to_records()) == 1

    def test_timestamps_relative_to_epoch(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.tick(2.0)
        with tracer.span("work"):
            clock.tick(3.0)
        rec = tracer.to_records()[0]
        assert rec["ts"] == pytest.approx(2.0)
        assert rec["dur"] == pytest.approx(3.0)

    def test_event_attaches_to_open_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s") as s:
            tracer.event("marker", n=3)
        event = tracer.to_records()[0]
        assert event["type"] == "event"
        assert event["span"] == s.span_id
        assert event["attrs"] == {"n": 3}

    def test_attrs_coerced_jsonable(self):
        import numpy as np

        span = Span(span_id=1, name="s", parent_id=None, t_start=0.0)
        span.set(count=np.int64(7), arr=(1, 2), obj=object())
        assert span.attrs["count"] == 7
        assert span.attrs["arr"] == [1, 2]
        assert isinstance(span.attrs["obj"], str)
        json.dumps(span.to_record())


class TestJsonlRoundTrip:
    def test_schema_and_round_trip(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("run", seed=1):
            tracer.event("step.bank", hits=4)
            with tracer.span("learn", kind="stage"):
                pass
        path = tmp_path / "t.jsonl"
        tracer.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records == tracer.to_records()
        for rec in records:
            assert rec["type"] in ("span", "event")
            assert {"id", "name", "ts", "attrs"} <= set(rec)
            if rec["type"] == "span":
                assert "dur" in rec and "parent" in rec
            else:
                assert "span" in rec


class TestChromeExport:
    def test_valid_trace_event_json(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("run"):
            clock.tick(0.5)
            tracer.event("mark")
        path = tmp_path / "t.trace.json"
        tracer.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 2
        for ev in events:
            assert {"name", "ph", "ts", "pid", "tid", "cat"} <= set(ev)
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 1 and len(instants) == 1
        assert complete[0]["dur"] == pytest.approx(0.5e6)  # microseconds
        assert instants[0]["s"] == "t"

    def test_export_trace_jsonl_writes_sibling(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("run"):
            pass
        path = tmp_path / "out.jsonl"
        written = export_trace(tracer, str(path))
        assert written == [str(path), str(tmp_path / "out.trace.json")]
        json.loads((tmp_path / "out.trace.json").read_text())

    def test_export_trace_other_extension(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        path = tmp_path / "out.json"
        assert export_trace(tracer, str(path)) == [str(path)]
        assert "traceEvents" in json.loads(path.read_text())


class TestAdopt:
    def _child_records(self):
        child = Tracer(clock=FakeClock())
        with child.span("output", output=3):
            child.event("step.mark")
        return child.to_records()

    def test_reids_and_reparents(self):
        parent = Tracer(clock=FakeClock())
        with parent.span("learn") as learn:
            parent.adopt(self._child_records())
        records = parent.to_records()
        names = [r["name"] for r in records]
        assert names == ["step.mark", "output", "learn"]
        event, out_span, learn_span = records
        assert learn_span["id"] == learn.span_id
        # Child root reparented under the open span; internal links kept.
        assert out_span["parent"] == learn_span["id"]
        assert event["span"] == out_span["id"]
        # Ids were re-assigned from the parent's counter: all unique.
        assert len({r["id"] for r in records}) == 3

    def test_adopt_outside_span_keeps_roots_unparented(self):
        parent = Tracer(clock=FakeClock())
        parent.adopt(self._child_records())
        out_span = [r for r in parent.to_records()
                    if r["name"] == "output"][0]
        assert out_span["parent"] is None

    def test_adopt_shifts_timestamps(self):
        clock = FakeClock()
        parent = Tracer(clock=clock)
        clock.tick(10.0)
        with parent.span("learn"):
            parent.adopt(self._child_records())
        out_span = [r for r in parent.to_records()
                    if r["name"] == "output"][0]
        # Child epoch-relative 0.0 shifted to the learn span's start.
        assert out_span["ts"] == pytest.approx(10.0)

    def test_fold_back_order_determines_ids(self):
        a, b = self._child_records(), self._child_records()
        one = Tracer(clock=FakeClock())
        with one.span("learn"):
            one.adopt(a)
            one.adopt(b)
        two = Tracer(clock=FakeClock())
        with two.span("learn"):
            two.adopt(a)
            two.adopt(b)
        strip = [{k: v for k, v in r.items() if k not in ("ts", "dur")}
                 for r in one.to_records()]
        strip2 = [{k: v for k, v in r.items() if k not in ("ts", "dur")}
                  for r in two.to_records()]
        assert strip == strip2
