"""The cross-job sample cache: state that compounds across requests.

Cirbo's core speedup is a persistent database consulted during
synthesis; the service-scale analogue here is simpler but the same
shape: every finished job exports its :class:`~repro.perf.bank.SampleBank`
rows, keyed by the *problem fingerprint* the checkpoint store already
uses (PI/PO names + seed), and the next job against the same oracle
prefills its bank from the cache — rows it will never have to bill.

Durability and concurrency:

- one ``.npz`` file per fingerprint, written via temp + ``os.replace``
  (a crash mid-store leaves the previous snapshot);
- a corrupt or unreadable entry is a *miss*, never an error — the cache
  may only ever save queries, not break jobs;
- counters are an append-only event log (O_APPEND lines are atomic at
  these sizes), so concurrent job processes never lose each other's
  updates the way read-modify-write stats files would.
"""

from __future__ import annotations

import io
import json
import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.robustness.storage import get_storage, payload_digest


def problem_fingerprint(pi_names, po_names, seed: int) -> str:
    """The checkpoint problem fingerprint, as a stable hex key."""
    return payload_digest({"pi_names": list(pi_names),
                           "po_names": list(po_names),
                           "seed": int(seed)})


class CrossJobCache:
    """Fingerprint-keyed store of answered ``(pattern, outputs)`` rows."""

    def __init__(self, root: str, max_entries: int = 64,
                 max_rows_per_entry: int = 1 << 15):
        if max_entries < 1 or max_rows_per_entry < 1:
            raise ValueError("cache capacities must be >= 1")
        self.root = str(root)
        self.max_entries = max_entries
        self.max_rows_per_entry = max_rows_per_entry
        os.makedirs(self.root, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def entry_path(self, fingerprint: str) -> str:
        return os.path.join(self.root, f"{fingerprint}.npz")

    @property
    def events_path(self) -> str:
        return os.path.join(self.root, "events.log")

    # -- events / stats ------------------------------------------------------

    def _log(self, kind: str, fingerprint: str, rows: int) -> None:
        line = json.dumps({"kind": kind, "fp": fingerprint[:16],
                           "rows": int(rows)})
        storage = get_storage()
        try:
            storage.append_line(self.events_path, line,
                                writer="cache-events")
        except OSError:
            # Stats are best-effort; the cache itself is not.  Count
            # the shed event so degradation stays observable.
            storage.counters.note_drop("cache-events")

    def stats(self) -> Dict[str, int]:
        """Fold the event log: hits/misses/stores/evictions + rows."""
        out = {"hits": 0, "misses": 0, "stores": 0, "evictions": 0,
               "rows_served": 0, "rows_stored": 0}
        try:
            with open(self.events_path) as handle:
                lines = handle.read().splitlines()
        except OSError:
            return out
        for line in lines:
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn tail line after a crash
            kind = event.get("kind")
            rows = int(event.get("rows", 0))
            if kind == "hit":
                out["hits"] += 1
                out["rows_served"] += rows
            elif kind == "miss":
                out["misses"] += 1
            elif kind == "store":
                out["stores"] += 1
                out["rows_stored"] += rows
            elif kind == "evict":
                out["evictions"] += 1
        return out

    # -- load / store --------------------------------------------------------

    def load(self, fingerprint: str, num_pis: int, num_pos: int
             ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Rows for ``fingerprint``, or ``None`` (miss / corrupt)."""
        path = self.entry_path(fingerprint)
        try:
            with np.load(path) as data:
                patterns = np.asarray(data["patterns"], dtype=np.uint8)
                outputs = np.asarray(data["outputs"], dtype=np.uint8)
        except (OSError, ValueError, KeyError, EOFError):
            self._log("miss", fingerprint, 0)
            return None
        if patterns.ndim != 2 or outputs.ndim != 2 \
                or patterns.shape[0] != outputs.shape[0] \
                or patterns.shape[1] != num_pis \
                or outputs.shape[1] != num_pos:
            # Shape mismatch means a fingerprint collision or tampering;
            # either way the entry is useless for this problem.
            self._log("miss", fingerprint, 0)
            return None
        self._log("hit", fingerprint, patterns.shape[0])
        return patterns, outputs

    def store(self, fingerprint: str, patterns: np.ndarray,
              outputs: np.ndarray) -> int:
        """Persist (the tail of) a job's answered rows; returns count."""
        n = patterns.shape[0]
        if n == 0:
            return 0
        if n > self.max_rows_per_entry:
            patterns = patterns[n - self.max_rows_per_entry:]
            outputs = outputs[n - self.max_rows_per_entry:]
            n = self.max_rows_per_entry
        buffer = io.BytesIO()
        np.savez_compressed(buffer, patterns=patterns, outputs=outputs)
        get_storage().atomic_write_bytes(
            self.entry_path(fingerprint), buffer.getvalue(),
            writer="cache", suffix=".npz.tmp")
        self._log("store", fingerprint, n)
        self._evict_over_capacity()
        return n

    def _evict_over_capacity(self) -> None:
        """Drop oldest entries beyond ``max_entries`` (LRU by mtime)."""
        try:
            entries = [entry for entry in os.listdir(self.root)
                       if entry.endswith(".npz")]
        except OSError:
            return
        if len(entries) <= self.max_entries:
            return
        def mtime(name: str) -> float:
            try:
                return os.path.getmtime(os.path.join(self.root, name))
            except OSError:
                return 0.0
        entries.sort(key=mtime)
        for name in entries[:len(entries) - self.max_entries]:
            try:
                os.unlink(os.path.join(self.root, name))
                self._log("evict", name.split(".")[0], 0)
            except OSError:
                pass
