"""Boolean-function substrate: cubes, SOP covers, truth tables, minimizers, BDDs.

This layer is deliberately independent of circuits and of the learning
algorithm; it provides the two-level algebra the FBDT learner and the
synthesis passes are built on.
"""

from repro.logic.cube import Cube
from repro.logic.sop import Sop
from repro.logic.truthtable import TruthTable
from repro.logic.bdd import Bdd

__all__ = ["Cube", "Sop", "TruthTable", "Bdd"]
