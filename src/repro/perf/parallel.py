"""Parallel per-output learning with deterministic results.

The problem decomposes per output (Sec. IV), so independent outputs can
be learned concurrently.  :func:`learn_outputs` runs a list of
:class:`OutputTask` either in-process (``jobs=1``, the paper's
single-threaded contract) or across ``concurrent.futures`` worker
processes, each holding its own *oracle shard* — a pickled copy of the
execution-layer oracle chain — and a private fork of the sample bank.

Determinism is by construction, not by luck:

- every output draws from its own seeded RNG stream
  (:func:`derive_output_rng`), never from a shared generator whose state
  would depend on scheduling order;
- every output reads a private :meth:`SampleBank.fork` of the bank as it
  stood *before* the fan-out, so no output observes rows produced by a
  sibling racing in another worker;
- results are keyed by output index and folded back in a fixed order.

Consequently the same seed yields a bit-identical circuit for any
``jobs`` value — provided neither wall-clock deadlines nor the query
budget bind (a timeout or budget cliff is inherently racy; the run still
degrades gracefully, it just may degrade differently).
"""

from __future__ import annotations

import pickle
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import RegressorConfig
from repro.core.fbdt import LearnedCover, cleanup_cover, learn_output
from repro.obs import context as obs_ctx
from repro.obs.accounting import billing_meter
from repro.obs.context import Instrumentation
from repro.oracle.base import Oracle, QueryBudgetExceeded
from repro.perf.bank import BankedOracle, BankStats, SampleBank

_RNG_STREAM = 0x51AB
"""Domain separator so per-output streams never collide with the
pipeline's shared preprocessing generator."""


def derive_output_rng(seed: int, output: int) -> np.random.Generator:
    """The per-output RNG stream: a pure function of (seed, output)."""
    return np.random.default_rng([seed, _RNG_STREAM, output])


@dataclass
class OutputTask:
    """One unit of step-4 work: learn output ``index`` within a slice."""

    index: int
    support: List[int]
    soft_seconds: float = float("inf")
    hard_seconds: float = float("inf")


@dataclass
class OutputResult:
    """What came back for one output (cover, or a reason there is none)."""

    index: int
    cover: Optional[LearnedCover] = None
    error: str = ""
    error_type: str = ""
    budget_exhausted: bool = False
    queries: int = 0
    """Rows billed to the oracle that served this task.  Counted against
    a worker's private shard in parallel mode (the caller's oracle never
    saw them); 0 relevance in-process, where the shared oracle was
    billed directly."""

    hard_overrun: bool = False
    bank: Optional[BankStats] = None
    obs: Optional[dict] = None
    """The task's private :class:`~repro.obs.context.Instrumentation`
    payload (trace records + metrics dump).  Folded back into the
    caller's active instrumentation in task order — the same order for
    any ``jobs`` value — then cleared."""


@dataclass
class EngineReport:
    """Aggregate outcome of one :func:`learn_outputs` call."""

    results: Dict[int, OutputResult] = field(default_factory=dict)
    extra_queries: int = 0
    """Worker-shard query rows invisible to the caller's oracle meter."""

    mode: str = "sequential"
    note: str = ""
    supervisor: Optional[dict] = None
    """:class:`~repro.robustness.supervisor.SupervisorStats` dump when
    the supervised pool ran (crashes, hangs, redispatches, quarantines);
    None for sequential runs."""


def run_output_task(oracle: Oracle, task: OutputTask,
                    config: RegressorConfig,
                    bank: Optional[SampleBank],
                    shield: bool = True) -> OutputResult:
    """Learn one output deterministically against ``oracle``.

    ``shield=False`` restores fail-fast semantics for generic exceptions
    (``isolate_outputs=False`` debugging); ``QueryBudgetExceeded`` is
    always absorbed into a result, matching the sequential pipeline.
    """
    rng = derive_output_rng(config.seed, task.index)
    local_bank = bank.fork() if bank is not None else None
    exec_oracle: Oracle = oracle
    if local_bank is not None:
        exec_oracle = BankedOracle(oracle, local_bank)
    # Meter billed rows at the marked billing meter (the base oracle),
    # not at the top of whatever wrapper stack we were handed: rows a
    # retry cache absorbs are requested of the stack but never billed,
    # and ``extra_queries`` must match what a sequential run would have
    # billed for the same work.
    meter = billing_meter(oracle)
    obs_cfg = getattr(config, "observability", None)
    child = Instrumentation(
        profile=getattr(obs_cfg, "profile", False),
        profile_memory=getattr(obs_cfg, "profile_memory", False)) \
        if obs_cfg is not None and obs_cfg.enabled else None
    start_rows = meter.query_count
    start_time = time.monotonic()

    def attempt() -> OutputResult:
        try:
            cover = learn_output(exec_oracle, task.index, task.support,
                                 config, rng,
                                 deadline=start_time + task.soft_seconds,
                                 bank=local_bank)
        except QueryBudgetExceeded as exc:
            return OutputResult(
                task.index, error=str(exc),
                error_type="QueryBudgetExceeded", budget_exhausted=True,
                queries=meter.query_count - start_rows,
                bank=local_bank.stats if local_bank is not None else None)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            if not shield:
                raise
            return OutputResult(
                task.index, error=f"{type(exc).__name__}: {exc}",
                error_type=type(exc).__name__,
                queries=meter.query_count - start_rows,
                bank=local_bank.stats if local_bank is not None else None)
        if local_bank is not None:
            cover.stats.bank_hits = local_bank.stats.hits
            cover.stats.bank_misses = local_bank.stats.misses
        # Pre-pay the two-level minimization here: it is pure per-output
        # work, and in parallel mode this moves the pipeline's dominant
        # sequential cost (espresso at assembly) onto the workers.
        cleanup_cover(cover)
        elapsed = time.monotonic() - start_time
        return OutputResult(
            task.index, cover=cover,
            budget_exhausted=cover.stats.budget_exhausted,
            queries=meter.query_count - start_rows,
            hard_overrun=elapsed >= task.hard_seconds,
            bank=local_bank.stats if local_bank is not None else None)

    if child is None:
        return attempt()
    # A private child instrumentation even in-process: sequential and
    # worker execution then produce identical per-task payloads, folded
    # back identically — the keystone for jobs-invariant aggregates.
    po_name = oracle.po_names[task.index] \
        if task.index < oracle.num_pos else ""
    # Worker shards run outside the parent's tracemalloc session, so
    # arm one per task when memory profiling is on; the "learn" stage
    # watermark then folds back via the gauge (max semantics).
    own_tracemalloc = (child.profile_memory
                       and not tracemalloc.is_tracing())
    if own_tracemalloc:
        tracemalloc.start()
    try:
        with obs_ctx.use(child):
            child.stage_stack.append("learn")
            try:
                with obs_ctx.output_scope(task.index, po_name):
                    res = attempt()
            finally:
                child.stage_stack.pop()
                if child.profile_memory and tracemalloc.is_tracing():
                    obs_ctx._record_stage_peak(child, "learn")
    finally:
        if own_tracemalloc:
            tracemalloc.stop()
    res.obs = child.payload()
    return res


# -- worker-process plumbing ---------------------------------------------------

_WORKER_STATE: dict = {}


def _worker_init(payload: bytes) -> None:
    oracle, config, bank = pickle.loads(payload)
    _WORKER_STATE["oracle"] = oracle
    _WORKER_STATE["config"] = config
    _WORKER_STATE["bank"] = bank


def _worker_run(task: OutputTask) -> OutputResult:
    return run_output_task(_WORKER_STATE["oracle"], task,
                           _WORKER_STATE["config"],
                           _WORKER_STATE["bank"], shield=True)


def learn_outputs(oracle: Oracle, tasks: List[OutputTask],
                  config: RegressorConfig, *, jobs: int,
                  bank: Optional[SampleBank] = None,
                  slice_provider: Optional[
                      Callable[[int, int], Tuple[float, float]]] = None,
                  on_result: Optional[
                      Callable[[OutputResult], None]] = None,
                  shield: bool = True) -> EngineReport:
    """Learn every task's output; in-process or across worker shards.

    ``slice_provider(idx, total)`` (sequential mode only) recomputes a
    task's ``(soft, hard)`` second budget at start time, preserving the
    DeadlineManager's leftover-donation semantics; parallel tasks run
    with the budgets already on them.  ``on_result`` fires as each
    result lands (checkpoint hook); arrival order is nondeterministic in
    parallel mode, so callers must not derive anything order-sensitive
    from it.
    """
    report = EngineReport()
    if jobs <= 1 or len(tasks) <= 1:
        _run_sequential(oracle, tasks, config, bank, slice_provider,
                        on_result, shield, report)
        _fold_back_obs(report, tasks)
        return report
    try:
        payload = pickle.dumps((oracle, config, bank))
    except Exception as exc:  # noqa: BLE001 - unpicklable oracle chain
        report.note = (f"oracle not picklable "
                       f"({type(exc).__name__}); fell back to "
                       "sequential learning")
        _run_sequential(oracle, tasks, config, bank, slice_provider,
                        on_result, shield, report)
        _fold_back_obs(report, tasks)
        return report
    # Imported lazily: the supervisor module needs OutputTask/Result
    # from here, so a top-level import would be circular.
    from repro.robustness.supervisor import (SupervisorPolicy,
                                             run_supervised)

    rob = getattr(config, "robustness", None)
    policy = SupervisorPolicy(
        heartbeat_interval=getattr(rob, "heartbeat_interval", 0.25),
        heartbeat_timeout=getattr(rob, "heartbeat_timeout", 15.0),
        task_wall_grace=getattr(rob, "task_wall_grace", 5.0),
        max_redispatches=getattr(rob, "max_redispatches", 1),
        redispatch_budget_factor=getattr(
            rob, "redispatch_budget_factor", 0.5),
        fault_plan=getattr(rob, "worker_fault_plan", None))

    report.mode = f"parallel x{jobs}"
    try:
        # The supervised pool (not ProcessPoolExecutor): one dead or
        # hung worker costs at most its own task — re-dispatched once,
        # then quarantined — never the whole fan-out.
        results, sup_stats = run_supervised(
            payload, tasks, jobs, policy, on_result=on_result)
        report.supervisor = sup_stats.as_dict()
        for res in results.values():
            report.results[res.index] = res
            report.extra_queries += res.queries
    except (OSError, PermissionError) as exc:
        # Process pools can be unavailable (sandboxes, exhausted PIDs);
        # the work still has to happen.
        report.note = (f"process pool unavailable "
                       f"({type(exc).__name__}: {exc}); fell back to "
                       "sequential learning")
        report.mode = "sequential"
        report.extra_queries = 0
        missing = [t for t in tasks if t.index not in report.results]
        _run_sequential(oracle, missing, config, bank, slice_provider,
                        on_result, shield, report)
    if bank is not None:
        for res in report.results.values():
            if res.bank is not None:
                bank.stats.merge(res.bank)
    _fold_back_obs(report, tasks)
    return report


def _fold_back_obs(report: EngineReport, tasks: List[OutputTask]) -> None:
    """Adopt per-task instrumentation payloads in *task order*.

    Task order is the same for every ``jobs`` value (arrival order is
    not), so the folded-back trace structure and metric aggregates are
    jobs-invariant.  With no active parent instrumentation the payloads
    stay attached to the results for the caller to inspect.
    """
    parent = obs_ctx.active()
    if parent is None:
        return
    for task in tasks:
        res = report.results.get(task.index)
        if res is not None and res.obs is not None:
            parent.adopt(res.obs)
            res.obs = None


def _run_sequential(oracle: Oracle, tasks: List[OutputTask],
                    config: RegressorConfig,
                    bank: Optional[SampleBank],
                    slice_provider, on_result, shield: bool,
                    report: EngineReport) -> None:
    total = len(tasks)
    for idx, task in enumerate(tasks):
        if slice_provider is not None:
            task.soft_seconds, task.hard_seconds = \
                slice_provider(idx, total)
        res = run_output_task(oracle, task, config, bank, shield=shield)
        res.queries = 0  # billed directly to the caller's oracle
        report.results[res.index] = res
        if bank is not None and res.bank is not None:
            bank.stats.merge(res.bank)
            res.bank = None  # merged; avoid double counting upstream
        if on_result is not None:
            on_result(res)
