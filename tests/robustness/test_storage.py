"""The hardened storage layer: atomic replaces, durable appends,
digest framing, and the injectable fault shim that the crash-point
harness and chaos scenarios drive."""

import errno
import json
import os

import pytest

from repro.robustness.storage import (ATOMIC_STEPS, DiskPressureMonitor,
                                      FaultyStorage, SimulatedCrash,
                                      Storage, StorageFaultModel,
                                      default_durability, get_storage,
                                      payload_digest, read_json_checked,
                                      read_records, set_storage,
                                      use_storage)


class TestAtomicWrite:
    def test_json_roundtrip_with_digest(self, tmp_path):
        path = str(tmp_path / "a.json")
        Storage("lax").atomic_write_json(path, {"x": 1}, writer="t")
        assert read_json_checked(path) == {"x": 1}
        raw = json.load(open(path))
        assert raw["digest"] == payload_digest({"x": 1})

    def test_tampered_payload_reads_none(self, tmp_path):
        path = str(tmp_path / "a.json")
        Storage("lax").atomic_write_json(path, {"x": 1}, writer="t")
        text = open(path).read().replace('"x": 1', '"x": 2')
        open(path, "w").write(text)
        assert read_json_checked(path) is None

    def test_missing_and_torn_read_none(self, tmp_path):
        assert read_json_checked(str(tmp_path / "no.json")) is None
        path = str(tmp_path / "torn.json")
        open(path, "w").write('{"x": 1, "dig')
        assert read_json_checked(path) is None

    def test_strict_issues_barriers_lax_does_not(self, tmp_path):
        strict, lax = Storage("strict"), Storage("lax")
        strict.atomic_write_json(str(tmp_path / "s.json"), {"a": 1},
                                 writer="t")
        lax.atomic_write_json(str(tmp_path / "l.json"), {"a": 1},
                              writer="t")
        assert strict.barrier_stats()["fsync_calls"] >= 2  # file + dir
        assert lax.barrier_stats()["fsync_calls"] == 0
        assert read_json_checked(str(tmp_path / "s.json")) == {"a": 1}

    def test_failure_cleans_temp_destination_untouched(self, tmp_path):
        path = str(tmp_path / "a.json")
        Storage("lax").atomic_write_json(path, {"v": 1}, writer="t")
        faulty = FaultyStorage(durability="strict",
                               fail_at=(2, "eio"))  # the rename step
        with pytest.raises(OSError) as exc:
            faulty.atomic_write_json(path, {"v": 2}, writer="t")
        assert exc.value.errno == errno.EIO
        assert read_json_checked(path) == {"v": 1}
        assert os.listdir(tmp_path) == ["a.json"]  # temp unlinked

    def test_crash_leaves_temp_debris(self, tmp_path):
        path = str(tmp_path / "a.json")
        Storage("lax").atomic_write_json(path, {"v": 1}, writer="t")
        faulty = FaultyStorage(durability="strict", crash_at=1)
        with pytest.raises(SimulatedCrash):
            faulty.atomic_write_json(path, {"v": 2}, writer="t")
        # A real kill -9 runs no cleanup: the temp file stays behind,
        # the destination keeps the old payload.
        assert read_json_checked(path) == {"v": 1}
        assert len(os.listdir(tmp_path)) == 2

    def test_validates_durability_mode(self):
        with pytest.raises(ValueError):
            Storage("eventually")


class TestDurableAppend:
    def test_append_heals_torn_tail(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        storage = Storage("lax")
        storage.append_record(path, {"seq": 0}, writer="t")
        with open(path, "a") as handle:
            handle.write('{"seq": 1, "torn')
        storage.append_record(path, {"seq": 2}, writer="t")
        records, corrupt = read_records(path)
        assert [r["seq"] for r in records] == [0, 2]
        assert corrupt == 1

    def test_counters_attribute_per_writer(self, tmp_path):
        storage = Storage("lax")
        storage.append_line(str(tmp_path / "a"), "x", writer="history")
        storage.atomic_write_json(str(tmp_path / "b"), {},
                                  writer="journal")
        storage.atomic_write_json(str(tmp_path / "c"), {},
                                  writer="journal")
        assert storage.counters.ops == {"history": 1, "journal": 2}


class TestFaultyStorage:
    def test_trace_enumerates_strict_steps_in_order(self, tmp_path):
        faulty = FaultyStorage(durability="strict")
        faulty.atomic_write_json(str(tmp_path / "a.json"), {},
                                 writer="t")
        assert tuple(step for _, step, _ in faulty.trace) \
            == ATOMIC_STEPS
        faulty.append_line(str(tmp_path / "l"), "x", writer="t")
        assert [s for _, s, _ in faulty.trace[-2:]] \
            == ["append", "fsync-append"]

    def test_lax_trace_skips_fsync_points(self, tmp_path):
        faulty = FaultyStorage(durability="lax")
        faulty.atomic_write_json(str(tmp_path / "a.json"), {},
                                 writer="t")
        assert [s for _, s, _ in faulty.trace] \
            == ["write-temp", "rename"]

    def test_model_rates_fault_with_errno_and_counters(self, tmp_path):
        model = StorageFaultModel(enospc_rate=1.0)
        faulty = FaultyStorage(model=model, durability="lax")
        with pytest.raises(OSError) as exc:
            faulty.atomic_write_json(str(tmp_path / "a.json"), {},
                                     writer="cache")
        assert exc.value.errno == errno.ENOSPC
        assert faulty.counters.faults == {"cache": {"enospc": 1}}
        assert faulty.counters.fault_total("enospc") == 1

    def test_writer_scoping_protects_other_writers(self, tmp_path):
        model = StorageFaultModel(eio_rate=1.0, writers={"cache"})
        faulty = FaultyStorage(model=model, durability="lax")
        faulty.atomic_write_json(str(tmp_path / "j.json"), {"ok": 1},
                                 writer="journal")  # must not fault
        assert read_json_checked(str(tmp_path / "j.json")) == {"ok": 1}
        with pytest.raises(OSError):
            faulty.atomic_write_json(str(tmp_path / "c.json"), {},
                                     writer="cache")

    def test_torn_rate_leaves_partial_append(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        model = StorageFaultModel(torn_rate=1.0)
        faulty = FaultyStorage(model=model, durability="lax")
        with pytest.raises(OSError) as exc:
            faulty.append_record(path, {"seq": 0}, writer="t")
        assert exc.value.errno == errno.EIO
        clean = str(tmp_path / "clean.jsonl")
        Storage("lax").append_record(clean, {"seq": 0}, writer="t")
        size = os.path.getsize(path)
        # A strict prefix of the same line actually hit the disk.
        assert 0 < size < os.path.getsize(clean)
        records, corrupt = read_records(path)
        assert records == [] and corrupt == 1

    def test_torn_crash_writes_prefix_then_dies(self, tmp_path):
        path = str(tmp_path / "a.json")
        faulty = FaultyStorage(durability="lax", crash_at=0, torn=True)
        with pytest.raises(SimulatedCrash):
            faulty.atomic_write_json(path, {"v": 1}, writer="t")
        debris = [n for n in os.listdir(tmp_path) if n != "a.json"]
        assert len(debris) == 1  # the torn temp file
        assert os.path.getsize(tmp_path / debris[0]) > 0

    def test_deterministic_schedules_per_seed(self, tmp_path):
        model = StorageFaultModel(eio_rate=0.3)

        def run(seed):
            faulty = FaultyStorage(model=model, seed=seed,
                                   durability="lax")
            outcome = []
            for i in range(20):
                try:
                    faulty.atomic_write_json(
                        str(tmp_path / f"f{seed}_{i}.json"), {},
                        writer="t")
                    outcome.append("ok")
                except OSError:
                    outcome.append("eio")
            return outcome

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_rejects_unknown_fail_kind(self):
        with pytest.raises(ValueError):
            FaultyStorage(fail_at=(0, "gremlin"))
        with pytest.raises(ValueError):
            StorageFaultModel(eio_rate=1.5)


class TestProcessWideDefault:
    def test_use_storage_scopes_and_restores(self):
        outer = get_storage()
        inner = FaultyStorage(durability="lax")
        with use_storage(inner):
            assert get_storage() is inner
        assert get_storage() is outer

    def test_env_resolves_durability(self, monkeypatch):
        monkeypatch.setenv("REPRO_DURABILITY", "lax")
        assert default_durability() == "lax"
        monkeypatch.setenv("REPRO_DURABILITY", "chaotic")
        assert default_durability() == "strict"
        previous = set_storage(None)
        try:
            monkeypatch.setenv("REPRO_DURABILITY", "lax")
            assert get_storage().durability == "lax"
        finally:
            set_storage(previous)


class TestDiskPressure:
    def test_probe_pressure_fraction(self, tmp_path):
        monitor = DiskPressureMonitor(str(tmp_path),
                                      probe=lambda: (1000, 250),
                                      storage=Storage("lax"))
        sample = monitor.sample()
        assert sample["pressure"] == pytest.approx(0.75)
        assert sample["free_bytes"] == 250

    def test_zero_total_reads_as_no_pressure(self, tmp_path):
        monitor = DiskPressureMonitor(str(tmp_path),
                                      probe=lambda: (0, 0),
                                      storage=Storage("lax"))
        assert monitor.sample()["pressure"] == 0.0

    def test_enospc_elevates_then_decays(self, tmp_path):
        storage = FaultyStorage(durability="lax")
        monitor = DiskPressureMonitor(str(tmp_path),
                                      probe=lambda: (1000, 900),
                                      storage=storage)
        assert monitor.sample()["pressure"] == pytest.approx(0.1)
        storage.counters.note_fault("cache", "enospc")
        assert monitor.sample()["pressure"] >= 0.99
        # No new faults since the last sample: statvfs wins again.
        assert monitor.sample()["pressure"] == pytest.approx(0.1)

    def test_real_filesystem_sample(self, tmp_path):
        sample = DiskPressureMonitor(str(tmp_path),
                                     storage=Storage("lax")).sample()
        assert 0.0 <= sample["pressure"] <= 1.0
        assert sample["total_bytes"] > 0
