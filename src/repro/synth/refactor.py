"""Large-cut cone resynthesis (ABC's ``refactor``).

Where ``rewrite`` works on enumerated 4-cuts, refactor greedily grows one
larger reconvergence-driven cut (up to ``max_leaves`` inputs) per node,
tabulates the cone function exhaustively, minimizes it two-level and
re-instantiates the quick-factored form when that is cheaper than the
direct translation.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.aig.aig import Aig, lit_node, lit_not
from repro.synth.rebuild import (best_two_level, build_factored, copy_pos,
                                 cut_truthtable, identity_map, map_lit)


def refactor(aig: Aig, max_leaves: int = 10,
             min_cone: int = 3) -> Aig:
    """Return a refactored, strashed copy."""
    new = Aig(pi_names=list(aig.pi_names))
    lit_map = identity_map(aig, new)
    refs = aig.ref_counts()
    for n in sorted(aig.reachable()):
        f0, f1 = aig.fanins(n)
        before = new.num_nodes
        direct = new.and_(map_lit(lit_map, f0), map_lit(lit_map, f1))
        direct_cost = new.num_nodes - before
        lit_map[n] = direct
        if direct_cost == 0:
            continue
        leaves = _grow_cut(aig, n, max_leaves, refs)
        if len(leaves) < 2 or len(leaves) > max_leaves:
            continue
        cone = _cone_size(aig, n, leaves)
        if cone < min_cone:
            continue
        table = cut_truthtable(aig, 2 * n, leaves)
        impl = best_two_level(table, max_cubes=96)
        if impl is None:
            continue
        expr, complemented = impl
        leaf_lits = [map_lit(lit_map, 2 * leaf) for leaf in leaves]
        before = new.num_nodes
        candidate = build_factored(new, expr, leaf_lits)
        if complemented:
            candidate = lit_not(candidate)
        cost = new.num_nodes - before
        if cost < direct_cost:
            lit_map[n] = candidate
    copy_pos(aig, new, lit_map)
    return new


def _grow_cut(aig: Aig, root: int, max_leaves: int,
              refs: List[int]) -> List[int]:
    """Reconvergence-driven cut growing from ``root``'s fanins."""
    f0, f1 = aig.fanins(root)
    leaves: Set[int] = {lit_node(f0), lit_node(f1)}
    changed = True
    while changed:
        changed = False
        # Prefer expanding leaves whose fanins are already (mostly) leaves.
        best_leaf = None
        best_growth = None
        for leaf in leaves:
            if not aig.is_and(leaf):
                continue
            g0, g1 = aig.fanins(leaf)
            fan = {lit_node(g0), lit_node(g1)}
            growth = len(fan - leaves) - 1
            if len(leaves) + growth > max_leaves:
                continue
            if best_growth is None or growth < best_growth:
                best_growth = growth
                best_leaf = leaf
        if best_leaf is not None and (best_growth <= 0
                                      or len(leaves) < max_leaves):
            g0, g1 = aig.fanins(best_leaf)
            leaves.discard(best_leaf)
            leaves.add(lit_node(g0))
            leaves.add(lit_node(g1))
            changed = True
    leaves.discard(0)  # constants need no leaf variable
    return sorted(leaves)


def _cone_size(aig: Aig, root: int, leaves: List[int]) -> int:
    leaf_set = set(leaves)
    seen: Set[int] = set()
    stack = [root]
    while stack:
        n = stack.pop()
        if n in leaf_set or n in seen or not aig.is_and(n):
            continue
        seen.add(n)
        f0, f1 = aig.fanins(n)
        stack.append(lit_node(f0))
        stack.append(lit_node(f1))
    return len(seen)
