"""Verify-and-repair: Wilson bounds, certification, bounded repair."""

import numpy as np
import pytest

from repro.logic.cube import Cube
from repro.network.builder import build_cube
from repro.network.simulate import simulate
from repro.oracle.eco import build_eco_netlist
from repro.oracle.netlist_oracle import NetlistOracle
from repro.robustness.verify import (VerifyPolicy, inverse_normal_cdf,
                                     rows_to_certify, verify_and_repair,
                                     wilson_lower_bound)


class TestConfidenceMath:
    def test_inverse_normal_cdf_known_values(self):
        assert inverse_normal_cdf(0.975) == pytest.approx(1.959964,
                                                          abs=1e-5)
        assert inverse_normal_cdf(0.95) == pytest.approx(1.644854,
                                                         abs=1e-5)
        assert inverse_normal_cdf(0.5) == pytest.approx(0.0, abs=1e-9)
        assert inverse_normal_cdf(0.025) == \
            pytest.approx(-inverse_normal_cdf(0.975), abs=1e-9)
        with pytest.raises(ValueError):
            inverse_normal_cdf(0.0)

    def test_wilson_bound_properties(self):
        z = 1.644854
        # More evidence -> tighter bound; bound never exceeds p-hat.
        small = wilson_lower_bound(100, 100, z)
        large = wilson_lower_bound(10000, 10000, z)
        assert small < large < 1.0
        assert wilson_lower_bound(0, 0, z) == 0.0
        assert wilson_lower_bound(50, 100, z) < 0.5

    def test_rows_to_certify_is_sufficient_and_tight(self):
        target, z = 0.9999, inverse_normal_cdf(0.95)
        n = rows_to_certify(target, z)
        assert wilson_lower_bound(n, n, z) >= target
        assert wilson_lower_bound(n - 2, n - 2, z) < target
        # The 99.99% @ 95% certificate needs ~27k clean rows.
        assert 25_000 < n < 30_000


def broken_copy(golden, j, assignment):
    """A copy of ``golden`` with output ``j`` flipped on one minterm."""
    net = golden.cleaned()
    cube = Cube.from_assignment(assignment,
                                list(range(len(assignment))))
    node = build_cube(net, cube, net.pi_nodes)
    net.po_nodes[j] = net.add_xor(net.po_nodes[j], node)
    return net


class TestVerifyAndRepair:
    NUM_PIS = 8

    def golden(self, seed=21):
        return build_eco_netlist(self.NUM_PIS, 3, seed=seed,
                                 support_low=3, support_high=5)

    def test_correct_circuit_certifies_exhaustively(self):
        golden = self.golden()
        oracle = NetlistOracle(golden)
        net, report = verify_and_repair(
            golden.cleaned(), oracle, VerifyPolicy(seed=0),
            learn_billed_rows=1000)
        assert report.all_certified()
        for v in report.outputs:
            assert v.status == "verified"
            assert v.exhaustive
            assert v.lower_bound == 1.0
            assert v.sampled == 1 << self.NUM_PIS
        # One shared full-space query covers every output.
        assert report.rows_spent == 1 << self.NUM_PIS

    def test_broken_output_repaired_via_patch(self):
        golden = self.golden()
        broken = broken_copy(golden, 1, [0] * self.NUM_PIS)
        oracle = NetlistOracle(golden)
        net, report = verify_and_repair(
            broken, oracle, VerifyPolicy(seed=0),
            learn_billed_rows=5000)
        ver = report.outputs[1]
        assert ver.status == "repaired"
        assert ver.patches_applied >= 1
        assert report.outputs[0].status == "verified"
        # The repaired netlist is exact again.
        full = np.array(np.meshgrid(
            *[[0, 1]] * self.NUM_PIS)).reshape(self.NUM_PIS, -1).T \
            .astype(np.uint8)
        assert simulate(net, full).tolist() == \
            simulate(golden, full).tolist()

    def test_unrepairable_is_tagged_verify_failed(self):
        golden = self.golden()
        broken = broken_copy(golden, 0, [1] * self.NUM_PIS)
        oracle = NetlistOracle(golden)
        _, report = verify_and_repair(
            broken, oracle, VerifyPolicy(seed=0, max_repair_rounds=0),
            learn_billed_rows=1000)
        ver = report.outputs[0]
        assert ver.status == "verify-failed"
        assert ver.mismatches == 1
        assert report.never_silently_wrong()
        assert not report.all_certified()

    def test_budget_exhaustion_yields_skipped_not_crash(self):
        golden = self.golden()
        oracle = NetlistOracle(golden, query_budget=10)
        _, report = verify_and_repair(
            golden.cleaned(), oracle, VerifyPolicy(seed=0),
            learn_billed_rows=1000)
        assert all(v.status == "skipped" for v in report.outputs)
        assert report.status_counts() == {"skipped": 3}

    def test_sampled_path_reports_inconclusive_honestly(self):
        # Force the sampled (non-exhaustive) path with a tiny sample: a
        # clean small sample cannot certify 99.99% and must say so.
        golden = self.golden()
        oracle = NetlistOracle(golden)
        policy = VerifyPolicy(seed=0, exhaustive_limit=4, samples=128)
        _, report = verify_and_repair(
            golden.cleaned(), oracle, policy, learn_billed_rows=1000)
        for v in report.outputs:
            assert v.status == "inconclusive"
            assert not v.exhaustive
            assert v.mismatches == 0
            assert v.lower_bound < policy.target

    def test_deterministic_given_seed(self):
        golden = self.golden()
        broken_a = broken_copy(golden, 1, [0] * self.NUM_PIS)
        broken_b = broken_copy(golden, 1, [0] * self.NUM_PIS)
        _, rep_a = verify_and_repair(
            broken_a, NetlistOracle(golden), VerifyPolicy(seed=3),
            learn_billed_rows=5000)
        _, rep_b = verify_and_repair(
            broken_b, NetlistOracle(golden), VerifyPolicy(seed=3),
            learn_billed_rows=5000)
        assert rep_a.to_json() == rep_b.to_json()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            VerifyPolicy(target=1.0).validate()
        with pytest.raises(ValueError):
            VerifyPolicy(confidence=0.0).validate()
        with pytest.raises(ValueError):
            VerifyPolicy(samples=0).validate()
        with pytest.raises(ValueError):
            VerifyPolicy(max_repair_rounds=-1).validate()
