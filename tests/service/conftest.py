"""Shared fixtures for the service-layer tests."""

import pytest

from repro.network.blif import write_blif
from repro.oracle.eco import build_eco_netlist
from repro.service.jobs import JobSpec
from repro.service.spool import Spool


@pytest.fixture
def golden_file(tmp_path):
    """A tiny golden circuit on disk (8 PIs, 2 POs): fast to learn."""
    net = build_eco_netlist(8, 2, seed=7, support_low=3, support_high=5)
    path = tmp_path / "golden.blif"
    with open(path, "w") as handle:
        write_blif(net, handle)
    return str(path), net


@pytest.fixture
def spool(tmp_path):
    return Spool(str(tmp_path / "spool"))


@pytest.fixture
def make_spec(golden_file):
    """Factory for fast-profile job specs against the golden circuit."""
    path, _ = golden_file

    def factory(job_id="j1", **kw):
        kw.setdefault("profile", "fast")
        kw.setdefault("time_limit", 15.0)
        kw.setdefault("seed", 7)
        return JobSpec(job_id=job_id, circuit=path, **kw)

    return factory
