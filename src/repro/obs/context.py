"""The ambient instrumentation context: who is spending the budget now.

The pipeline's interesting costs are incurred deep inside shared code
(the oracle stack, the sampler, the FBDT) that has no business taking a
tracer parameter.  Instead, an :class:`Instrumentation` (tracer +
metrics registry + attribution stacks) is *activated* for the duration
of a run; instrumented code reports through the module-level helpers
below, which are near-free no-ops when nothing is active.

Attribution: :func:`stage` and :func:`output_scope` push the current
pipeline stage / primary output; the oracle hook then labels every
billed row with ``(stage, output)`` and every served row with the
serving wrapper's ``obs_layer``, so a metrics dump answers "which stage
spent the rows, and which wrapper in the Banked→Retrying→base stack
actually billed them".

Parallel workers activate their own private :class:`Instrumentation`
(see :func:`repro.perf.parallel.run_output_task`); the parent adopts
their payloads in fold-back order, so ``--jobs N`` produces the same
aggregates as a sequential run.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

UNATTRIBUTED = "-"
"""Stage/output label used for traffic outside any scope."""

BATCH_ROWS_BOUNDARIES = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536,
                         262144)
"""Buckets for the ``oracle.batch_rows`` histogram of billed query
batch sizes (rows per call at the billing meter)."""


class Instrumentation:
    """One run's tracer + metrics registry + attribution state.

    ``profile=True`` additionally arms the cost-model counters
    (:func:`pcount` / :func:`pobserve`) in the hot kernels and stamps a
    CPU-time duration on every span; ``profile_memory=True`` records
    tracemalloc per-stage high-water marks (see
    ``docs/OBSERVABILITY.md``, "Profiling and the cost model").
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 profile: bool = False, profile_memory: bool = False):
        if tracer is None:
            cpu = time.process_time if profile else None
            tracer = Tracer(cpu_clock=cpu)
        self.tracer = tracer
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.profile = profile
        self.profile_memory = profile_memory
        self.stage_stack: List[str] = []
        self.output_stack: List[int] = []

    # -- attribution ---------------------------------------------------------

    @property
    def stage(self) -> str:
        return self.stage_stack[-1] if self.stage_stack else UNATTRIBUTED

    @property
    def output(self) -> int:
        return self.output_stack[-1] if self.output_stack else -1

    # -- worker payloads -----------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """Pickle-/JSON-safe snapshot for cross-process fold-back."""
        return {"trace": self.tracer.to_records(),
                "metrics": self.metrics.to_dict()}

    def adopt(self, payload: Dict[str, Any]) -> None:
        """Fold a child payload back in (call in fold-back order)."""
        self.tracer.adopt(payload.get("trace", []))
        self.metrics.merge_dict(payload.get("metrics", {}))


_STACK: List[Instrumentation] = []


def active() -> Optional[Instrumentation]:
    """The innermost active instrumentation, or None."""
    return _STACK[-1] if _STACK else None


@contextmanager
def use(instr: Optional[Instrumentation]) -> Iterator[None]:
    """Activate ``instr`` for the dynamic extent (None is a no-op)."""
    if instr is None:
        yield
        return
    _STACK.append(instr)
    try:
        yield
    finally:
        _STACK.pop()


# -- scopes ---------------------------------------------------------------------


@contextmanager
def stage(name: str, **attrs: Any) -> Iterator[None]:
    """Enter a pipeline stage: attribution label + tracer span."""
    instr = active()
    if instr is None:
        yield
        return
    watermark = instr.profile_memory and tracemalloc.is_tracing()
    if watermark:
        tracemalloc.reset_peak()
    instr.stage_stack.append(name)
    try:
        with instr.tracer.span(name, kind="stage", **attrs):
            yield
    finally:
        instr.stage_stack.pop()
        if watermark:
            _record_stage_peak(instr, name)


def _record_stage_peak(instr: Instrumentation, name: str) -> None:
    """Fold the tracemalloc peak since stage entry into the gauge.

    Peaks keep max semantics across nested/repeated stages; they are
    wall-clock-adjacent data and explicitly outside the byte-identity
    contract (allocation timing differs across ``--jobs``).
    """
    peak_kib = tracemalloc.get_traced_memory()[1] / 1024.0
    gauge = instr.metrics.gauge("mem.stage_peak_kib")
    prior = gauge.value(stage=name)
    if prior is None or peak_kib > prior:
        gauge.set(round(peak_kib, 3), stage=name)


@contextmanager
def output_scope(index: int, name: str = "") -> Iterator[None]:
    """Enter a per-output scope: attribution label + tracer span."""
    instr = active()
    if instr is None:
        yield
        return
    instr.output_stack.append(index)
    try:
        with instr.tracer.span("output", kind="output", output=index,
                               po_name=name):
            yield
    finally:
        instr.output_stack.pop()


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """A plain tracer span (no attribution change); no-op if inactive."""
    instr = active()
    if instr is None:
        yield
        return
    with instr.tracer.span(name, **attrs):
        yield


# -- reporting helpers -----------------------------------------------------------


def count(name: str, amount: float = 1, **labels: Any) -> None:
    """Increment a counter, auto-labelled with the current stage."""
    instr = active()
    if instr is None or amount == 0:
        return
    labels.setdefault("stage", instr.stage)
    instr.metrics.counter(name).inc(amount, **labels)


def observe(name: str, value: float, boundaries: Sequence[float],
            **labels: Any) -> None:
    """Observe into a fixed-bucket histogram (stage auto-labelled)."""
    instr = active()
    if instr is None:
        return
    labels.setdefault("stage", instr.stage)
    instr.metrics.histogram(name, boundaries).observe(value, **labels)


def pcount(name: str, amount: float = 1, **labels: Any) -> None:
    """Profile-gated :func:`count`: the cost-model counters.

    No-op unless the active instrumentation was built with
    ``profile=True``, so the kernel hot paths stay free on normal runs.
    Amounts must be *nominal* work (computed from the inputs, before
    any backend/early-exit divergence) so aggregates are byte-identical
    across ``--jobs`` values and kernel backends.
    """
    instr = active()
    if instr is None or not instr.profile or amount == 0:
        return
    labels.setdefault("stage", instr.stage)
    instr.metrics.counter(name).inc(amount, **labels)


def profiling() -> bool:
    """True when the active instrumentation has the cost model armed.

    Kernels use this to skip computing a :func:`pcount` amount at all
    when profiling is off — the gate the <5% overhead budget relies on.
    """
    instr = active()
    return instr is not None and instr.profile


def pobserve(name: str, value: float, boundaries: Sequence[float],
             **labels: Any) -> None:
    """Profile-gated :func:`observe` (cost-model histograms)."""
    instr = active()
    if instr is None or not instr.profile:
        return
    labels.setdefault("stage", instr.stage)
    instr.metrics.histogram(name, boundaries).observe(value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    instr = active()
    if instr is None:
        return
    instr.metrics.gauge(name).set(value, **labels)


def event(name: str, **attrs: Any) -> None:
    """Emit a typed tracer event; no-op if inactive."""
    instr = active()
    if instr is None:
        return
    instr.tracer.event(name, **attrs)


# -- oracle hooks ----------------------------------------------------------------


def mark_billing(oracle: Any) -> None:
    """Declare ``oracle`` the billing meter of its wrapper stack.

    The flag survives pickling to worker processes, so worker-shard
    copies bill against the same logical meter.  See
    ``docs/OBSERVABILITY.md`` ("query accounting").
    """
    oracle._obs_billing = True


def is_billing(oracle: Any) -> bool:
    return bool(getattr(oracle, "_obs_billing", False))


def on_oracle_rows(oracle: Any, rows: int) -> None:
    """Called by ``Oracle.query`` for every delivered batch.

    Records per-layer served rows always, and — when ``oracle`` is the
    marked billing meter — the billed rows attributed to the current
    (stage, output).
    """
    instr = active()
    if instr is None:
        return
    stage_label = instr.stage
    instr.metrics.counter("oracle.rows_served").inc(
        rows, layer=oracle.obs_layer, stage=stage_label)
    if getattr(oracle, "_obs_billing", False):
        instr.metrics.counter("oracle.rows_billed").inc(
            rows, stage=stage_label, output=instr.output)
        instr.metrics.counter("oracle.calls_billed").inc(
            1, stage=stage_label)
        instr.metrics.histogram("oracle.batch_rows",
                                BATCH_ROWS_BOUNDARIES).observe(
            rows, stage=stage_label)
