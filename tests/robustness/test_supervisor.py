"""Supervised worker pool: heartbeats, redispatch, quarantine."""

import pickle

import numpy as np
import pytest

from repro.core.config import fast_config
from repro.oracle.eco import build_eco_netlist
from repro.oracle.netlist_oracle import NetlistOracle
from repro.perf.parallel import OutputTask
from repro.robustness.supervisor import (SupervisorPolicy, SupervisorStats,
                                         run_supervised)


def make_payload(num_pis=8, num_pos=3, seed=11):
    golden = build_eco_netlist(num_pis, num_pos, seed=seed,
                               support_low=3, support_high=5)
    oracle = NetlistOracle(golden)
    cfg = fast_config(time_limit=10.0)
    pi_index = {name: k for k, name in enumerate(oracle.pi_names)}
    supports = [sorted(pi_index[name]
                       for name in golden.structural_support(j))
                for j in range(num_pos)]
    tasks = [OutputTask(j, support=supports[j], soft_seconds=5.0,
                        hard_seconds=10.0) for j in range(num_pos)]
    return pickle.dumps((oracle, cfg, None)), tasks, golden, supports


def fast_policy(**kw):
    kw.setdefault("heartbeat_interval", 0.1)
    kw.setdefault("heartbeat_timeout", 2.0)
    return SupervisorPolicy(**kw)


class TestHappyPath:
    def test_all_tasks_return_covers(self):
        payload, tasks, _, _ = make_payload()
        results, stats = run_supervised(payload, tasks, jobs=2,
                                        policy=fast_policy())
        assert sorted(results) == [0, 1, 2]
        for res in results.values():
            assert res.cover is not None
            assert res.error_type == ""
        assert stats.workers_crashed == 0
        assert stats.workers_hung == 0
        assert stats.redispatches == 0
        assert stats.quarantined == 0
        assert stats.workers_spawned == 2

    def test_on_result_callback_fires_per_task(self):
        payload, tasks, _, _ = make_payload()
        seen = []
        run_supervised(payload, tasks, jobs=2, policy=fast_policy(),
                       on_result=lambda r: seen.append(r.index))
        assert sorted(seen) == [0, 1, 2]


class TestFaultInjection:
    def test_crashed_worker_is_replaced_and_task_redispatched(self):
        payload, tasks, _, _ = make_payload()
        policy = fast_policy(fault_plan={0: "crash"})
        results, stats = run_supervised(payload, tasks, jobs=2,
                                        policy=policy)
        assert stats.workers_crashed >= 1
        assert stats.redispatches == 1
        # The second attempt succeeded: the crash cost nothing visible.
        assert results[0].cover is not None
        assert all(results[j].cover is not None for j in (1, 2))

    def test_hung_worker_detected_by_heartbeat_timeout(self):
        payload, tasks, _, _ = make_payload()
        policy = fast_policy(heartbeat_timeout=1.0,
                             fault_plan={1: "hang"})
        results, stats = run_supervised(payload, tasks, jobs=2,
                                        policy=policy)
        assert stats.workers_hung >= 1
        assert stats.redispatches == 1
        assert results[1].cover is not None

    def test_poison_task_quarantined_not_fatal(self):
        payload, tasks, _, _ = make_payload()
        # No redispatch allowed: the first crash already makes task 0
        # twice-fatal by policy, so it must be quarantined in place.
        policy = fast_policy(max_redispatches=0, fault_plan={0: "crash"})
        results, stats = run_supervised(payload, tasks, jobs=2,
                                        policy=policy)
        assert stats.quarantined == 1
        assert results[0].cover is None
        assert results[0].error_type == "PoisonTask"
        # The healthy tasks were untouched.
        assert results[1].cover is not None
        assert results[2].cover is not None

    def test_redispatch_budget_is_scaled_down(self):
        payload, tasks, _, _ = make_payload()
        policy = fast_policy(fault_plan={0: "crash"},
                             redispatch_budget_factor=0.5)
        results, stats = run_supervised(payload, tasks, jobs=1,
                                        policy=policy)
        assert stats.redispatches == 1
        assert results[0].cover is not None


class TestDeterminism:
    def test_results_identical_across_jobs(self):
        payload, tasks, golden, supports = make_payload()
        res1, _ = run_supervised(payload, tasks, jobs=1,
                                 policy=fast_policy())
        res3, _ = run_supervised(payload, tasks, jobs=3,
                                 policy=fast_policy())
        rng = np.random.default_rng(0)
        pats = rng.integers(0, 2, size=(400, golden.num_pis))
        pats = pats.astype(np.uint8)
        for j in res1:
            a = res1[j].cover.evaluate(pats)
            b = res3[j].cover.evaluate(pats)
            assert a.tolist() == b.tolist()


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(heartbeat_interval=0.0).validate()
        with pytest.raises(ValueError):
            SupervisorPolicy(heartbeat_timeout=0.1,
                             heartbeat_interval=0.2).validate()
        with pytest.raises(ValueError):
            SupervisorPolicy(max_redispatches=-1).validate()
        with pytest.raises(ValueError):
            SupervisorPolicy(redispatch_budget_factor=0.0).validate()

    def test_stats_as_dict_roundtrips(self):
        stats = SupervisorStats(workers_spawned=3, workers_crashed=1,
                                redispatches=1)
        d = stats.as_dict()
        assert d["workers_spawned"] == 3
        assert d["workers_crashed"] == 1
        assert d["redispatches"] == 1
        assert set(d) == {"workers_spawned", "workers_crashed",
                          "workers_hung", "wall_timeouts",
                          "redispatches", "quarantined"}
