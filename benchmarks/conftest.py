"""Shared helpers for the benchmark suite.

Benchmarks regenerate the paper's tables/figures at prototype scale: each
bench prints the same row structure the paper reports and stores the
measured values in ``benchmark.extra_info`` so the JSON export carries them.

Budgets here are intentionally small (seconds per case, not the contest's
2700 s); ``examples/contest_evaluation.py`` runs the full-scale version.
"""

import numpy as np
import pytest


def one_shot(benchmark, fn, *args, **kwargs):
    """Run an expensive end-to-end flow exactly once under timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


@pytest.fixture
def rng():
    return np.random.default_rng(20191107)
