"""Continuous perf-regression observatory over checked-in bench snapshots.

The repo keeps one JSON snapshot per gated benchmark at the root
(``BENCH_fbdt_batched.json``, ``BENCH_service.json``,
``BENCH_profile.json``).  This module turns those point-in-time files
into a trend: an append-only ``BENCH_history.jsonl`` where every line
is digest-checked and chained to its predecessor, plus a direction-aware
regression check of the current snapshots against the median of the
last K history entries.

Gating is per-metric, not one-size-fits-all:

- **exact** — deterministic cost counters (the profiler's nominal work
  model) must equal the baseline bit-for-bit; any drift is either a
  determinism bug or an intentional algorithm change that warrants a
  fresh ``append``.
- **ratio** / **abs** — noisy metrics (wall-clock ratios, row counts,
  overhead percentages) regress only when they move past the baseline
  median by a relative/absolute tolerance *in the bad direction*;
  improvements always pass and are reported as notes.
- **info** — recorded and printed, never gated (absolute wall seconds
  are machine-dependent).

Usage (standalone, no pytest; run from the repo root)::

    python -m benchmarks.trend append            # baseline all snapshots
    python -m benchmarks.trend check             # CI gate (exit 1 = regression)
    python -m benchmarks.trend show [bench]      # recent history table

History lines never reference wall-clock time of day; ``seq`` plus the
digest chain give a tamper-evident total order without making the file
nondeterministic to regenerate.
"""

import argparse
import hashlib
import json
import os
import statistics
import sys
from dataclasses import dataclass

try:
    # The hardened append (O_APPEND single write + fsync barrier +
    # torn-tail healing) from the robustness storage layer.
    from repro.robustness.storage import append_line as _append_line
except ImportError:  # standalone use without src/ on sys.path
    _append_line = None

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HISTORY_NAME = "BENCH_history.jsonl"
DEFAULT_K = 5

EXACT = "exact"    # deterministic: any drift from the baseline fails
RATIO = "ratio"    # tolerance is relative to the baseline median
ABS = "abs"        # tolerance is an absolute delta
INFO = "info"      # recorded and shown, never gated

LOWER = "lower"    # lower is better (counts, seconds, overhead)
HIGHER = "higher"  # higher is better (speedup ratios, accuracy)


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric: where it lives and how it may move.

    ``path`` is a ``/``-joined route into the snapshot's ``metrics``
    dict ("/" rather than "." because profiler counter names contain
    dots).  A trailing ``/*`` expands to every key under the prefix, in
    both the snapshot and the history window, so counters added or
    removed by a code change are gated without editing this table.
    """

    path: str
    kind: str = RATIO
    better: str = LOWER
    tolerance: float = 0.1


BENCHES = {
    "fbdt_batched": ("BENCH_fbdt_batched.json", (
        MetricSpec("batched/oracle_calls", RATIO, LOWER, 0.10),
        MetricSpec("batched/oracle_rows", RATIO, LOWER, 0.10),
        MetricSpec("calls_ratio", RATIO, HIGHER, 0.50),
        MetricSpec("wall_ratio", RATIO, HIGHER, 0.50),
        MetricSpec("batched/accuracy", ABS, HIGHER, 0.05),
        MetricSpec("batched/wall_s", INFO),
        MetricSpec("unbatched/wall_s", INFO),
    )),
    "service": ("BENCH_service.json", (
        MetricSpec("cache/hits", EXACT, HIGHER),
        MetricSpec("cold/billed_rows", RATIO, LOWER, 0.15),
        MetricSpec("warm/billed_rows", RATIO, LOWER, 0.15),
        MetricSpec("cold/scheduler/redispatches", EXACT, LOWER),
        MetricSpec("cold/elapsed_s", INFO),
        MetricSpec("warm/elapsed_s", INFO),
        # strict-vs-lax fsync cost on an isolated mini-fleet; the hard
        # <10% gate lives in bench_service.check_gates, this is trend
        # visibility only (wall-noise sensitive).
        MetricSpec("durability/overhead_pct", INFO),
    )),
    "profile": ("BENCH_profile.json", (
        MetricSpec("counters/*", EXACT, LOWER),
        # The hard <5% budget lives in bench_obs.check_profile_gates;
        # this wide, direction-aware band only catches runaway drift
        # (single-round wall noise swings +/-20 points).
        MetricSpec("overhead_pct", ABS, LOWER, 25.0),
        MetricSpec("obs_wall_s", INFO),
        MetricSpec("profile_wall_s", INFO),
    )),
}


class TrendError(ValueError):
    """History file is corrupt, rewritten, or otherwise untrustworthy."""


class TornTailError(TrendError):
    """Only the *final* line is bad: a crash tore the last append.

    Unlike mid-file corruption (which means tampering and stays fatal),
    a torn tail is the expected debris of a kill or ENOSPC mid-append.
    It is reported — never silently skipped — and ``check --repair``
    truncates the file at ``offset`` to recover the valid prefix.
    """

    def __init__(self, path: str, lineno: int, offset: int,
                 reason: str):
        self.path = path
        self.lineno = lineno
        self.offset = offset
        self.reason = reason
        super().__init__(
            f"{path}:{lineno}: torn final line ({reason}) — likely a "
            f"crash or ENOSPC mid-append; run `python -m "
            f"benchmarks.trend check --repair` to truncate the torn "
            f"tail (byte {offset}) and keep the valid prefix")


def _digest(record: dict) -> str:
    payload = {key: value for key, value in record.items()
               if key != "digest"}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _lookup(metrics, path: str):
    node = metrics
    for part in path.split("/"):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _expand(spec: MetricSpec, snapshot_metrics: dict,
            records: list) -> list:
    """Resolve a spec to concrete paths (wildcards over both sides)."""
    if not spec.path.endswith("/*"):
        return [spec.path]
    prefix = spec.path[:-2]
    keys = set()
    node = _lookup(snapshot_metrics, prefix)
    if isinstance(node, dict):
        keys.update(node)
    for rec in records:
        for path in rec["metrics"]:
            if path.startswith(prefix + "/"):
                keys.add(path[len(prefix) + 1:])
    return [f"{prefix}/{key}" for key in sorted(keys)]


def load_history(path: str) -> list:
    """Parse and verify the append-only log; raises TrendError.

    A bad *final* line raises :class:`TornTailError` (with the byte
    offset to truncate at) instead of the generic failure: the tail is
    the only place a crash mid-append can tear, so only there is
    repair — as opposed to tamper-rejection — on the table.
    """
    records = []
    if not os.path.exists(path):
        return records
    with open(path, "rb") as handle:
        raw = handle.read()
    entries = []  # (lineno, byte offset, text)
    pos = 0
    for lineno, chunk in enumerate(raw.split(b"\n"), 1):
        entries.append((lineno, pos,
                        chunk.decode("utf-8", "replace").strip()))
        pos += len(chunk) + 1
    while entries and not entries[-1][2]:
        entries.pop()  # trailing newline / blank tail
    entries = [entry for entry in entries if entry[2]]
    prev = ""
    for index, (lineno, offset, line) in enumerate(entries):
        final = index == len(entries) - 1
        try:
            rec = json.loads(line)
        except ValueError:
            if final:
                raise TornTailError(path, lineno, offset,
                                    "not valid JSON")
            raise TrendError(f"{path}:{lineno}: not valid JSON")
        if not isinstance(rec, dict) or rec.get("digest") != _digest(rec):
            if final:
                raise TornTailError(path, lineno, offset,
                                    "digest mismatch")
            raise TrendError(
                f"{path}:{lineno}: digest mismatch — the line was "
                f"edited after being appended")
        if rec.get("prev", "") != prev:
            raise TrendError(
                f"{path}:{lineno}: chain broken — history is "
                f"append-only; earlier lines were removed or "
                f"reordered")
        if rec.get("seq") != len(records) + 1:
            raise TrendError(
                f"{path}:{lineno}: bad seq {rec.get('seq')} "
                f"(expected {len(records) + 1})")
        prev = rec["digest"]
        records.append(rec)
    return records


def repair_torn_tail(exc: TornTailError) -> str:
    """Truncate the history at the torn line; returns a description."""
    with open(exc.path, "r+b") as handle:
        handle.truncate(exc.offset)
    return (f"repaired {exc.path}: dropped torn final line "
            f"{exc.lineno} ({exc.reason}); history truncated to byte "
            f"{exc.offset}")


def append_snapshot(bench: str, snapshot: dict,
                    history_path: str) -> dict:
    """Flatten one snapshot's gated metrics onto the history log."""
    _, specs = BENCHES[bench]
    records = load_history(history_path)
    snap_metrics = snapshot.get("metrics", {})
    flat = {}
    for spec in specs:
        for path in _expand(spec, snap_metrics, []):
            value = _lookup(snap_metrics, path)
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                flat[path] = value
    record = {
        "bench": bench,
        "seq": len(records) + 1,
        "prev": records[-1]["digest"] if records else "",
        "gates_passed": bool(snapshot.get("gates_passed", False)),
        "metrics": flat,
    }
    record["digest"] = _digest(record)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if _append_line is not None:
        _append_line(history_path, line, writer="history")
    else:
        with open(history_path, "a") as handle:
            handle.write(line + "\n")
    return record


def check_bench(bench: str, snapshot: dict, records: list,
                k: int = DEFAULT_K, specs=None):
    """Compare one snapshot against the median of its last K entries.

    Returns ``(failures, notes)`` — failures are regressions beyond
    tolerance (or any drift on exact metrics); notes cover
    improvements, informational metrics and bootstrap cases.
    """
    specs = specs if specs is not None else BENCHES[bench][1]
    mine = [rec for rec in records if rec["bench"] == bench]
    failures, notes = [], []
    if not mine:
        notes.append(f"{bench}: no history yet — run "
                     f"`python -m benchmarks.trend append {bench}` "
                     f"to start the baseline")
        return failures, notes
    window = mine[-k:]
    snap_metrics = snapshot.get("metrics", {})
    for spec in specs:
        for path in _expand(spec, snap_metrics, window):
            value = _lookup(snap_metrics, path)
            baseline_vals = [rec["metrics"][path] for rec in window
                             if path in rec["metrics"]]
            if value is None:
                if spec.kind == EXACT and baseline_vals:
                    failures.append(
                        f"{bench}:{path}: deterministic metric "
                        f"vanished from the snapshot but history "
                        f"still tracks it")
                else:
                    notes.append(f"{bench}:{path}: missing from "
                                 f"snapshot; skipped")
                continue
            if not baseline_vals:
                notes.append(f"{bench}:{path}: first observation "
                             f"({value}); no baseline yet")
                continue
            baseline = statistics.median(baseline_vals)
            if spec.kind == INFO:
                notes.append(f"{bench}:{path}: {value} "
                             f"(baseline {baseline}; informational)")
                continue
            if spec.kind == EXACT:
                if value != baseline:
                    failures.append(
                        f"{bench}:{path}: deterministic metric "
                        f"drifted: {value} vs baseline {baseline} "
                        f"(exact gate; append a new baseline if the "
                        f"change is intentional)")
                continue
            slack = abs(baseline) * spec.tolerance \
                if spec.kind == RATIO else spec.tolerance
            if spec.better == LOWER:
                limit, bad = baseline + slack, value > baseline + slack
            else:
                limit, bad = baseline - slack, value < baseline - slack
            if bad:
                failures.append(
                    f"{bench}:{path}: regressed beyond tolerance: "
                    f"{value} vs baseline {baseline} "
                    f"({spec.better} is better; limit "
                    f"{round(limit, 6)})")
            elif (value < baseline) == (spec.better == LOWER) \
                    and value != baseline:
                notes.append(f"{bench}:{path}: improved: {value} vs "
                             f"baseline {baseline}")
    return failures, notes


def _resolve_benches(names, root: str, require: bool):
    """Map CLI bench names to (name, snapshot_path); validate."""
    chosen = names or sorted(BENCHES)
    resolved, failures = [], []
    for name in chosen:
        if name not in BENCHES:
            failures.append(f"unknown bench {name!r} "
                            f"(known: {', '.join(sorted(BENCHES))})")
            continue
        path = os.path.join(root, BENCHES[name][0])
        if not os.path.exists(path):
            if require or names:
                failures.append(f"{name}: snapshot {path} missing — "
                                f"run its bench with --out first")
            continue
        resolved.append((name, path))
    return resolved, failures


def cmd_append(args) -> int:
    resolved, failures = _resolve_benches(args.benches, args.root,
                                          require=False)
    for name, path in resolved:
        with open(path) as handle:
            snapshot = json.load(handle)
        record = append_snapshot(name, snapshot, args.history)
        print(f"appended {name} seq={record['seq']} "
              f"({len(record['metrics'])} metrics) to {args.history}")
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_check(args) -> int:
    try:
        records = load_history(args.history)
    except TornTailError as exc:
        if not getattr(args, "repair", False):
            print(f"ERROR: {exc}", file=sys.stderr)
            return 1
        print(f"  note: {repair_torn_tail(exc)}")
        try:
            records = load_history(args.history)
        except TrendError as inner:
            print(f"ERROR: {inner}", file=sys.stderr)
            return 1
    except TrendError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    resolved, failures = _resolve_benches(args.benches, args.root,
                                          require=True)
    for name, path in resolved:
        with open(path) as handle:
            snapshot = json.load(handle)
        bench_failures, notes = check_bench(name, snapshot, records,
                                            k=args.k)
        for note in notes:
            print(f"  note: {note}")
        failures.extend(bench_failures)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        print(f"trend check FAILED ({len(failures)} regressions)",
              file=sys.stderr)
        return 1
    print(f"trend check passed ({len(resolved)} benches, "
          f"{len(records)} history entries)")
    return 0


def cmd_show(args) -> int:
    try:
        records = load_history(args.history)
    except TrendError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    shown = [rec for rec in records
             if not args.benches or rec["bench"] in args.benches]
    if not shown:
        print("no history entries")
        return 0
    for rec in shown[-args.k * len(BENCHES):]:
        keys = sorted(rec["metrics"])
        head = ", ".join(f"{key}={rec['metrics'][key]}"
                         for key in keys[:4])
        more = f" (+{len(keys) - 4} more)" if len(keys) > 4 else ""
        print(f"seq {rec['seq']:>3}  {rec['bench']:<14} {head}{more}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.trend",
        description="append-only bench history and regression gate")
    parser.add_argument("command", choices=["append", "check", "show"])
    parser.add_argument("benches", nargs="*",
                        help="bench names (default: all with a "
                             "checked-in snapshot)")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="directory holding the BENCH_*.json "
                             "snapshots (default: repo root)")
    parser.add_argument("--history", default=None,
                        help=f"history log path (default: "
                             f"<root>/{HISTORY_NAME})")
    parser.add_argument("--k", type=int, default=DEFAULT_K,
                        help="baseline window: median of the last K "
                             "entries per bench (default 5)")
    parser.add_argument("--repair", action="store_true",
                        help="check only: truncate a *torn final line* "
                             "(crash/ENOSPC mid-append) and proceed on "
                             "the valid prefix; mid-file corruption "
                             "stays fatal")
    args = parser.parse_args(argv)
    if args.history is None:
        args.history = os.path.join(args.root, HISTORY_NAME)
    return {"append": cmd_append, "check": cmd_check,
            "show": cmd_show}[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
