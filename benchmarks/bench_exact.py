"""Exact-synthesis benches: minimum-chain search cost and rewrite payoff."""

import numpy as np
import pytest

from benchmarks.conftest import one_shot
from repro.aig.aig import Aig
from repro.logic.cube import Cube
from repro.logic.sop import Sop
from repro.network.builder import netlist_from_sops
from repro.sat import are_equivalent
from repro.synth.exact import exact_synthesis
from repro.synth.rewrite import rewrite


@pytest.mark.parametrize("name,fn,optimum", [
    ("and2", lambda b: b[0] and b[1], 1),
    ("xor2", lambda b: b[0] != b[1], 3),
    ("mux", lambda b: b[1] if b[0] else b[2], 3),
    ("maj3", lambda b: sum(b) >= 2, 4),
    ("and4", lambda b: all(b), 3),
])
def test_exact_chain_search(benchmark, name, fn, optimum):
    k = 2 if name in ("and2", "xor2") else (4 if name == "and4" else 3)
    table = 0
    for m in range(1 << k):
        bits = [(m >> v) & 1 for v in range(k)]
        if fn(bits):
            table |= 1 << m

    chain = one_shot(benchmark, exact_synthesis, table, k)
    assert chain is not None and chain.size == optimum
    benchmark.extra_info.update(function=name, gates=chain.size)


def test_exact_rewrite_payoff(benchmark):
    """Second exact-rewrite call is nearly free (NPN cache warm)."""
    rng = np.random.default_rng(8)
    cubes = []
    for _ in range(30):
        vars_ = rng.choice(7, size=int(rng.integers(2, 5)), replace=False)
        cubes.append(Cube({int(v): int(rng.integers(0, 2))
                           for v in vars_}))
    net = netlist_from_sops([f"x{i}" for i in range(7)],
                            [("f", Sop(cubes, 7), False)])
    aig = Aig.from_netlist(net)
    rewrite(aig, exact=True)  # warm the cache outside the timer

    out = benchmark(rewrite, aig, exact=True)
    assert are_equivalent(aig, out) is True
    assert out.size() <= aig.size()
    benchmark.extra_info.update(before=aig.size(), after=out.size())
