"""Metrics registry: counters, histogram bucket edges, merge laws."""

import json

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


class TestCounter:
    def test_total_and_filter(self):
        reg = MetricsRegistry()
        c = reg.counter("rows")
        c.inc(10, stage="learn", output=0)
        c.inc(5, stage="learn", output=1)
        c.inc(3, stage="support")
        assert c.total() == 18
        assert c.total(stage="learn") == 15
        assert c.value(stage="support") == 3
        assert c.value(stage="missing") == 0

    def test_by_groups_and_none_bucket(self):
        reg = MetricsRegistry()
        c = reg.counter("rows")
        c.inc(10, stage="learn", output=0)
        c.inc(5, stage="learn", output=1)
        c.inc(3, stage="support")
        assert c.by("stage") == {"learn": 15, "support": 3}
        # Label sets missing the group-by label land under None.
        assert c.by("output") == {0: 10, 1: 5, None: 3}
        assert c.by("output", stage="learn") == {0: 10, 1: 5}


class TestHistogramBuckets:
    def test_boundaries_are_inclusive_upper_bounds(self):
        h = Histogram("d", boundaries=[1, 2, 4])
        for v in (0, 1):     # <= 1
            h.observe(v)
        h.observe(2)         # <= 2
        for v in (3, 4):     # <= 4
            h.observe(v)
        h.observe(5)         # overflow
        assert h.counts() == [2, 1, 2, 1]

    def test_exact_boundary_lands_in_its_bucket(self):
        h = Histogram("d", boundaries=[8, 16])
        h.observe(8)
        h.observe(16)
        assert h.counts() == [1, 1, 0]

    def test_rejects_unsorted_or_empty(self):
        with pytest.raises(ValueError):
            Histogram("d", boundaries=[])
        with pytest.raises(ValueError):
            Histogram("d", boundaries=[2, 1])

    def test_registry_fixes_boundaries_per_name(self):
        reg = MetricsRegistry()
        reg.histogram("d", [1, 2])
        assert reg.histogram("d", [1, 2]) is reg.histogram("d", [1, 2])
        with pytest.raises(ValueError):
            reg.histogram("d", [1, 2, 3])

    def test_sum_and_count_tracked(self):
        reg = MetricsRegistry()
        h = reg.histogram("d", [10])
        h.observe(3, stage="learn")
        h.observe(4, stage="learn")
        row = reg.to_dict()["histograms"]["d"][0]
        assert row["sum"] == 7
        assert row["count"] == 2
        assert row["counts"] == [2, 0]


class TestMergeAndSerialization:
    def _make(self, a, b):
        reg = MetricsRegistry()
        reg.counter("rows").inc(a, stage="learn")
        reg.counter("rows").inc(b, stage="support")
        reg.gauge("depth").set(a)
        reg.histogram("d", [2, 4]).observe(a)
        return reg

    def test_merge_dict_adds_counters_and_histograms(self):
        one = self._make(10, 1)
        two = self._make(5, 2)
        one.merge_dict(two.to_dict())
        assert one.counter("rows").total() == 18
        # 10 and 5 both land past the last boundary (4): overflow bucket.
        assert one.histogram("d", [2, 4]).counts() == [0, 0, 2]
        # Gauges are last-write-wins.
        assert one.gauge("depth").value() == 5

    def test_merge_is_commutative_for_counters(self):
        a, b = self._make(10, 1), self._make(5, 2)
        ab = MetricsRegistry()
        ab.merge(a)
        ab.merge(b)
        ba = MetricsRegistry()
        ba.merge(b)
        ba.merge(a)
        left, right = ab.to_dict(), ba.to_dict()
        assert left["counters"] == right["counters"]
        assert left["histograms"] == right["histograms"]

    def test_merge_rejects_boundary_mismatch(self):
        one = MetricsRegistry()
        one.histogram("d", [1, 2]).observe(1)
        other = MetricsRegistry()
        other.histogram("d", [1, 2, 3]).observe(1)
        with pytest.raises(ValueError):
            one.merge(other)

    def test_to_dict_deterministic_json(self):
        one = self._make(10, 1)
        two = self._make(10, 1)
        assert json.dumps(one.to_dict(), sort_keys=True) == \
            json.dumps(two.to_dict(), sort_keys=True)

    def test_to_dict_round_trips_through_merge(self):
        one = self._make(10, 1)
        clone = MetricsRegistry()
        clone.merge_dict(one.to_dict())
        assert clone.to_dict() == one.to_dict()


class TestHistogramQuantiles:
    BOUNDS = [1, 2, 4, 8, 16, 32, 64, 128]

    def _hist(self, values, **labels):
        hist = Histogram("lat", self.BOUNDS)
        for v in values:
            hist.observe(v, **labels)
        return hist

    def test_rejects_out_of_range_q(self):
        hist = self._hist([1, 2, 3])
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_none_without_observations(self):
        hist = Histogram("lat", self.BOUNDS)
        assert hist.quantile(0.5) is None
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["p50"] is None

    def test_overflow_bucket_clamps_to_last_boundary(self):
        hist = self._hist([1000, 2000, 4000])
        assert hist.quantile(0.99) == float(self.BOUNDS[-1])

    def test_label_filter_aggregates_like_counter_total(self):
        hist = Histogram("lat", self.BOUNDS)
        for v in (1, 2, 3, 4):
            hist.observe(v, tier="fast", stage="learn")
        for v in (100, 120):
            hist.observe(v, tier="slow", stage="learn")
        assert hist.total_count() == 6
        assert hist.total_count(tier="fast") == 4
        assert hist.total_sum(tier="slow") == 220
        # The slow tier's median sits in its own (64, 128] bucket.
        assert hist.quantile(0.5, tier="slow") > 64
        assert hist.quantile(0.5, tier="fast") <= 4

    def test_summary_shape(self):
        hist = self._hist([1, 2, 3, 4, 5, 6, 7, 8])
        summary = hist.summary()
        assert set(summary) == {"count", "sum", "p50", "p95", "p99"}
        assert summary["count"] == 8
        assert summary["sum"] == 36

    def test_quantiles_track_numpy_within_bucket_width(self):
        # Property test: on non-negative synthetic data, the
        # bucket-interpolated estimate never strays further from the
        # exact numpy percentile than the width of the bucket holding
        # the target rank (the best any fixed-bucket sketch can do).
        import numpy as np

        bounds = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
        rng = np.random.default_rng(11)
        for dist in ("uniform", "lognormal", "exponential"):
            if dist == "uniform":
                data = rng.uniform(0, 900, size=4000)
            elif dist == "lognormal":
                data = rng.lognormal(mean=2.0, sigma=1.2, size=4000)
            else:
                data = rng.exponential(scale=40.0, size=4000)
            data = np.clip(data, 0, 1000)
            hist = Histogram("q", bounds)
            for v in data:
                hist.observe(float(v))
            edges = [0.0] + [float(b) for b in bounds]
            for q in (0.5, 0.9, 0.95, 0.99):
                exact = float(np.percentile(data, q * 100))
                est = hist.quantile(q)
                # Width of the bucket the exact value falls in (the
                # overflow bucket clamps, so cap at the last edge).
                idx = min(int(np.searchsorted(bounds, exact)),
                          len(bounds) - 1)
                width = edges[idx + 1] - edges[idx]
                assert abs(est - exact) <= width + 1e-9, (
                    dist, q, est, exact, width)
