"""The query engine: fused sampling support, a cross-output sample bank,
and parallel per-output learning.

The paper's pipeline is dominated by oracle traffic.  This package
amortizes it three ways (see ``docs/PERFORMANCE.md``):

- :mod:`repro.perf.bank` — a global, memory-bounded store of every
  ``(pattern, full output row)`` pair ever answered, drained before new
  budget is spent;
- :mod:`repro.perf.parallel` — a ``concurrent.futures`` executor that
  learns independent outputs in worker processes with per-worker oracle
  shards, deterministically;
- the fused single-call ``pattern_sampling`` lives in
  :mod:`repro.core.sampling` (it is the oracle-facing hot path).
"""

from repro.perf.bank import BankedOracle, BankStats, SampleBank
from repro.perf.parallel import (OutputResult, OutputTask, derive_output_rng,
                                 learn_outputs)

__all__ = [
    "BankedOracle",
    "BankStats",
    "SampleBank",
    "OutputResult",
    "OutputTask",
    "derive_output_rng",
    "learn_outputs",
]
