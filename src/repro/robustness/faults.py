"""Seeded fault injection: an adversarial wrapper around any oracle.

The contest's IO-generator is an opaque binary; nothing in the problem
statement promises it answers promptly, correctly, or at all.
:class:`FaultyOracle` makes that adversity reproducible: every fault
decision is drawn from one seeded RNG whose draw sequence depends only on
the sequence of queries, so a failing run replays bit-for-bit under the
same seed.  The model covers four failure families:

- **transient exceptions** — the query raises ``TransientOracleFault``
  and no answer is delivered (a crashed generator process, a dropped
  pipe);
- **latency spikes / hangs** — the query takes ``hang_duration``
  simulated seconds; when that exceeds the per-query deadline the wrapper
  raises ``OracleTimeout`` instead of stalling the pipeline;
- **intermittent bit-flip noise** — delivered answers are corrupted
  per-bit, *not* repeatably per-assignment (contrast
  :class:`repro.oracle.noisy.NoisyOracle`, whose corruption is a function
  of the input);
- **budget exhaustion** — after ``fail_after_queries`` delivered rows the
  wrapper raises ``QueryBudgetExceeded`` forever, simulating a generator
  that cuts the learner off mid-run;
- **wrong-shape responses** — the delivered block is malformed (last row
  truncated or duplicated), which ``Oracle.query`` rejects and classifies
  as a ``TransientOracleFault``, so the retry path covers malformed
  generator output too.

The same family covers the *storage* side: ENOSPC / EIO / torn-write /
crash-point injection lives in :mod:`repro.robustness.storage` as
:class:`~repro.robustness.storage.FaultyStorage` +
:class:`~repro.robustness.storage.StorageFaultModel` (re-exported here),
with the identical seeded-RNG / fixed-draw-count reproducibility
contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.obs import context as obs
from repro.oracle.base import (Oracle, OracleTimeout, QueryBudgetExceeded,
                               TransientOracleFault)
from repro.robustness.storage import (FaultyStorage,  # noqa: F401
                                      SimulatedCrash, StorageFaultModel)


@dataclass
class FaultModel:
    """Knobs of the injected fault distribution (all off by default)."""

    transient_rate: float = 0.0
    """Probability that a ``query`` call raises ``TransientOracleFault``."""

    hang_rate: float = 0.0
    """Probability that a ``query`` call incurs a latency spike."""

    hang_duration: float = 5.0
    """Simulated duration of a latency spike, seconds."""

    query_deadline: Optional[float] = 1.0
    """Per-query deadline: spikes longer than this raise
    ``OracleTimeout``; ``None`` means spikes always stall (real sleep)."""

    bitflip_rate: float = 0.0
    """Per-bit probability of corrupting a delivered answer."""

    fail_after_queries: Optional[int] = None
    """Deliver this many rows, then raise ``QueryBudgetExceeded``
    forever (``None`` disables)."""

    malform_rate: float = 0.0
    """Probability that a ``query`` call returns a wrong-shape response
    (last row truncated or duplicated).  ``Oracle.query`` rejects the
    block and classifies it as a ``TransientOracleFault``, so the retry
    layer re-asks; no rows are billed."""

    real_sleep: bool = False
    """Actually ``time.sleep`` through sub-deadline spikes.  Off by
    default so fault-heavy tests stay fast; the timeout path is taken
    either way."""

    def validate(self) -> None:
        for name in ("transient_rate", "hang_rate", "bitflip_rate",
                     "malform_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.hang_duration < 0.0:
            raise ValueError("hang_duration must be non-negative")


@dataclass
class FaultCounters:
    """What the wrapper actually injected (for tests and reporting)."""

    transients: int = 0
    hangs: int = 0
    timeouts: int = 0
    bits_flipped: int = 0
    budget_cutoffs: int = 0
    malformed: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    """Injection count per fault kind (``transient``, ``hang``,
    ``timeout``, ``budget-cutoff``, ``malform-truncate``,
    ``malform-duplicate``; ``bitflip`` counts flipped *bits*).  Surfaced
    per-layer by ``accounting_summary`` and ``run_report.json``."""

    def bump(self, kind: str, amount: int = 1) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + amount


class FaultyOracle(Oracle):
    """Inject the :class:`FaultModel` faults in front of ``inner``.

    The fault stream is a pure function of ``(seed, query sequence)``:
    each ``query`` call draws a fixed number of decision uniforms, so two
    wrappers with the same seed serving the same queries fail in exactly
    the same places — a failing chaos run is replayable.
    """

    obs_layer = "faults"

    def __init__(self, inner: Oracle, model: Optional[FaultModel] = None,
                 seed: int = 0):
        model = model or FaultModel()
        model.validate()
        super().__init__(inner.pi_names, inner.po_names)
        self._inner = inner
        self._model = model
        self._rng = np.random.default_rng(seed)
        self._delivered_rows = 0
        self.counters = FaultCounters()

    @property
    def model(self) -> FaultModel:
        return self._model

    @property
    def inner(self) -> Oracle:
        return self._inner

    def _evaluate(self, patterns: np.ndarray) -> np.ndarray:
        m = self._model
        # Fixed draw count per call keeps the fault stream aligned with
        # the query sequence no matter which families are enabled.
        u_transient, u_hang, u_malform, u_kind = self._rng.random(4)
        if m.fail_after_queries is not None \
                and self._delivered_rows >= m.fail_after_queries:
            self.counters.budget_cutoffs += 1
            self.counters.bump("budget-cutoff")
            obs.count("faults.injected", kind="budget-cutoff")
            raise QueryBudgetExceeded(
                f"injected: generator cut off after "
                f"{m.fail_after_queries} rows")
        if u_transient < m.transient_rate:
            self.counters.transients += 1
            self.counters.bump("transient")
            obs.count("faults.injected", kind="transient")
            raise TransientOracleFault("injected transient fault")
        if u_hang < m.hang_rate:
            self.counters.hangs += 1
            self.counters.bump("hang")
            obs.count("faults.injected", kind="hang")
            if m.query_deadline is not None \
                    and m.hang_duration > m.query_deadline:
                self.counters.timeouts += 1
                self.counters.bump("timeout")
                obs.count("faults.injected", kind="timeout")
                raise OracleTimeout(
                    f"injected hang of {m.hang_duration:.1f}s exceeds "
                    f"per-query deadline {m.query_deadline:.1f}s")
            if m.real_sleep:
                time.sleep(m.hang_duration)
        out = self._inner.query(patterns, validate=False)
        if m.bitflip_rate > 0.0:
            flips = (self._rng.random(out.shape)
                     < m.bitflip_rate).astype(np.uint8)
            flipped = int(flips.sum())
            self.counters.bits_flipped += flipped
            if flipped:
                self.counters.bump("bitflip", flipped)
            obs.count("faults.bits_flipped", flipped)
            out = out ^ flips
        if u_malform < m.malform_rate:
            # Return a wrong-shape block: Oracle.query on this wrapper
            # sees the shape mismatch and raises TransientOracleFault,
            # exactly as a real generator emitting a short / repeated
            # line would look to the execution layer.  The rows were
            # never delivered, so _delivered_rows stays untouched.
            kind = "malform-truncate" if u_kind < 0.5 \
                else "malform-duplicate"
            self.counters.malformed += 1
            self.counters.bump(kind)
            obs.count("faults.injected", kind=kind)
            if kind == "malform-truncate":
                return out[:-1]
            return np.concatenate([out, out[-1:]], axis=0)
        self._delivered_rows += patterns.shape[0]
        return out
