"""Shared machinery for rebuild-style AIG passes.

All our passes are append-only rebuilds: walk the old AIG in topological
order, translate each node into a fresh structurally hashed AIG (possibly
through a smarter implementation), and let final PO-reachability drop the
garbage.  Structural hashing makes the rebuild itself a cleanup (strash).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.aig.aig import Aig, lit_compl, lit_node, lit_not
from repro.logic.factor import FactoredNode, factor
from repro.logic.minimize import quine_mccluskey
from repro.logic.sop import Sop
from repro.logic.truthtable import TruthTable


def copy_strash(aig: Aig) -> Aig:
    """Plain rebuild: strash + dead-node removal."""
    new = Aig(pi_names=list(aig.pi_names))
    lit_map = identity_map(aig, new)
    for n in sorted(aig.reachable()):
        f0, f1 = aig.fanins(n)
        lit_map[n] = new.and_(map_lit(lit_map, f0), map_lit(lit_map, f1))
    copy_pos(aig, new, lit_map)
    return new


def identity_map(old: Aig, new: Aig) -> Dict[int, int]:
    """Initial node->literal map covering constant and PIs."""
    if old.num_pis != new.num_pis:
        raise ValueError("PI count mismatch")
    lit_map = {0: 0}
    for k in range(old.num_pis):
        lit_map[k + 1] = new.pi_lit(k)
    return lit_map


def map_lit(lit_map: Dict[int, int], literal: int) -> int:
    mapped = lit_map[lit_node(literal)]
    return lit_not(mapped) if lit_compl(literal) else mapped


def copy_pos(old: Aig, new: Aig, lit_map: Dict[int, int]) -> None:
    for name, po in zip(old.po_names, old.po_lits):
        new.add_po(map_lit(lit_map, po), name)


def build_factored(aig: Aig, node: FactoredNode,
                   leaf_lits: Sequence[int]) -> int:
    """Instantiate a factored expression; leaf variable i -> leaf_lits[i]."""
    if node.kind == "const0":
        return 0
    if node.kind == "const1":
        return 1
    if node.kind == "lit":
        base = leaf_lits[node.var]
        return base if node.phase else lit_not(base)
    child_lits = [build_factored(aig, c, leaf_lits) for c in node.children]
    if node.kind == "and":
        return aig.and_many(child_lits)
    return aig.or_many(child_lits)


def best_two_level(table: TruthTable, exact_limit: int = 6,
                   max_cubes: Optional[int] = None
                   ) -> Optional[Tuple[FactoredNode, bool]]:
    """Minimized, factored implementation of a small truth table.

    Tries both the onset and the offset cover (the paper's trick 2 applied
    at synthesis time) and returns ``(expression, complemented)`` where
    ``complemented`` says the expression realizes the complement.  Returns
    None when both covers blow past ``max_cubes`` (the function is not
    two-level-friendly and resynthesis would not pay off).
    """
    from repro.logic.truthtable import IsopOverflow

    candidates = []
    for complemented, tt in ((False, table), (True, ~table)):
        try:
            if tt.num_vars <= exact_limit:
                sop = quine_mccluskey(tt.minterms(), tt.num_vars)
            else:
                sop = tt.isop(max_cubes=max_cubes)
        except IsopOverflow:
            continue
        expr = factor(sop)
        candidates.append((expr.literal_count(), complemented, expr))
    if not candidates:
        return None
    candidates.sort(key=lambda c: c[0])
    _, complemented, expr = candidates[0]
    return expr, complemented


def cone_nodes(aig: Aig, root: int, leaves: Set[int]) -> List[int]:
    """AND nodes strictly inside the (root, leaves) cone, topo-ordered."""
    inside: Set[int] = set()
    stack = [root]
    while stack:
        n = stack.pop()
        if n in leaves or n in inside or not aig.is_and(n):
            continue
        inside.add(n)
        f0, f1 = aig.fanins(n)
        stack.append(lit_node(f0))
        stack.append(lit_node(f1))
    return sorted(inside)


def cut_truthtable(aig: Aig, root_lit: int, leaves: Sequence[int]) -> TruthTable:
    """Truth table of ``root_lit`` as a function of the cut ``leaves``.

    Simulates the cone on all ``2^k`` leaf assignments; leaves may be any
    AIG nodes (PIs or internal), ``k`` up to ~14.
    """
    k = len(leaves)
    if k > 16:
        raise ValueError("cut too wide for exhaustive tabulation")
    num_bits = 1 << k
    num_words = max(1, num_bits >> 6)
    values: Dict[int, np.ndarray] = {}
    for i, leaf in enumerate(leaves):
        tt = TruthTable.variable(i, k)
        words = tt.words
        if words.shape[0] != num_words:  # k < 6 -> single masked word
            words = np.array([tt.words[0]], dtype=np.uint64)
        values[leaf] = words
    values[0] = np.zeros(num_words, dtype=np.uint64)
    order = cone_nodes(aig, lit_node(root_lit), set(leaves))
    for n in order:
        f0, f1 = aig.fanins(n)
        a = _value_of(values, f0)
        b = _value_of(values, f1)
        values[n] = a & b
    root_words = _value_of(values, root_lit)
    return TruthTable(k, root_words)


def _value_of(values: Dict[int, np.ndarray], literal: int) -> np.ndarray:
    v = values[lit_node(literal)]
    return ~v if lit_compl(literal) else v
