"""Tests for the black-box oracle contract."""

import numpy as np
import pytest

from repro.network.netlist import Netlist
from repro.oracle import (FunctionOracle, NetlistOracle, Oracle,
                          QueryBudgetExceeded)


def and_oracle(budget=None):
    net = Netlist("and2")
    a = net.add_pi("a")
    b = net.add_pi("b")
    net.add_po("o", net.add_and(a, b))
    return NetlistOracle(net, query_budget=budget)


class TestContract:
    def test_names_exposed(self):
        o = and_oracle()
        assert o.pi_names == ["a", "b"]
        assert o.po_names == ["o"]
        assert o.num_pis == 2 and o.num_pos == 1

    def test_full_assignments_required(self):
        o = and_oracle()
        with pytest.raises(ValueError):
            o.query(np.zeros((3, 1), dtype=np.uint8))  # partial

    def test_non_binary_rejected(self):
        o = and_oracle()
        with pytest.raises(ValueError):
            o.query(np.full((1, 2), 2, dtype=np.uint8))

    def test_query_counting(self):
        o = and_oracle()
        o.query(np.zeros((5, 2), dtype=np.uint8))
        o.query_one([1, 1])
        assert o.query_count == 6
        o.reset_query_count()
        assert o.query_count == 0

    def test_budget_enforced(self):
        o = and_oracle(budget=4)
        o.query(np.zeros((3, 2), dtype=np.uint8))
        with pytest.raises(QueryBudgetExceeded):
            o.query(np.zeros((2, 2), dtype=np.uint8))
        # The failed batch must not have been counted.
        assert o.query_count == 3

    def test_query_one(self):
        o = and_oracle()
        assert o.query_one([1, 1]) == [1]
        assert o.query_one([1, 0]) == [0]

    def test_correct_values(self):
        o = and_oracle()
        pats = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        assert o.query(pats)[:, 0].tolist() == [0, 0, 0, 1]

    def test_call_counting(self):
        o = and_oracle()
        o.query(np.zeros((5, 2), dtype=np.uint8))
        o.query(np.zeros((3, 2), dtype=np.uint8))
        assert o.query_count == 8
        assert o.query_calls == 2
        o.reset_query_count()
        assert o.query_calls == 0

    def test_validate_false_same_answers(self):
        a, b = and_oracle(), and_oracle()
        pats = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        assert (a.query(pats) == b.query(pats, validate=False)).all()

    def test_validate_false_still_checks_shape(self):
        o = and_oracle()
        with pytest.raises(ValueError):
            o.query(np.zeros((3, 1), dtype=np.uint8), validate=False)

    def test_validate_false_skips_value_scan(self):
        """The fast path trusts internally generated patterns: a
        non-binary value sails through instead of raising."""
        o = and_oracle()
        bad = np.full((1, 2), 2, dtype=np.uint8)
        o.query(bad, validate=False)  # no ValueError
        with pytest.raises(ValueError):
            o.query(bad)


class TestFunctionOracle:
    def test_vectorized(self):
        o = FunctionOracle(
            lambda p: (p.sum(axis=1) % 2).reshape(-1, 1),
            pi_names=["a", "b", "c"], po_names=["parity"])
        pats = np.array([[1, 0, 0], [1, 1, 0], [1, 1, 1]], dtype=np.uint8)
        assert o.query(pats)[:, 0].tolist() == [1, 0, 1]

    def test_from_scalar(self):
        o = FunctionOracle.from_scalar(
            lambda bits: [int(bits[0] or bits[1]), int(bits[0])],
            pi_names=["a", "b"], po_names=["or", "pass"])
        assert o.query_one([0, 1]) == [1, 0]
        assert o.query_one([1, 0]) == [1, 1]

    def test_malformed_response_caught(self):
        from repro.oracle.base import TransientOracleFault

        o = FunctionOracle(lambda p: np.zeros((p.shape[0], 3)),
                           pi_names=["a"], po_names=["x"])
        with pytest.raises(TransientOracleFault):
            o.query(np.zeros((2, 1), dtype=np.uint8))
        # The malformed response delivered nothing, so nothing billed.
        assert o.query_count == 0

    def test_malformed_row_count_caught(self):
        from repro.oracle.base import TransientOracleFault

        o = FunctionOracle(lambda p: np.zeros((p.shape[0] + 1, 1)),
                           pi_names=["a"], po_names=["x"])
        with pytest.raises(TransientOracleFault):
            o.query(np.zeros((2, 1), dtype=np.uint8))
        assert o.query_count == 0


class TestNetlistOracle:
    def test_golden_access(self):
        o = and_oracle()
        assert o.golden_netlist().gate_count() == 1

    def test_matches_simulation(self, rng):
        from repro.network.simulate import simulate
        net = Netlist("mix")
        pis = [net.add_pi(f"i{k}") for k in range(6)]
        net.add_po("o", net.add_xor(pis[0], pis[4]))
        o = NetlistOracle(net)
        pats = rng.integers(0, 2, (100, 6)).astype(np.uint8)
        assert (o.query(pats) == simulate(net, pats)).all()
