"""Cut-based k-LUT technology mapping (ABC's ``if -K k``).

Maps an AIG into a network of k-input lookup tables using the classic
two-phase scheme: a forward pass chooses each node's best cut by
(depth, area-flow), then a backward pass from the POs materializes the
chosen cuts into the final LUT cover.

The contest itself counts 2-input gates, so the learner does not use
this; it exists because any self-respecting AIG kit ends in a mapper,
and because LUT counts are a useful second size metric for the learned
circuits (``repro stats`` could report it; benches do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.aig.aig import Aig, lit_compl, lit_node
from repro.aig.cuts import Cut, enumerate_cuts
from repro.logic.truthtable import TruthTable
from repro.network.builder import build_factored_sop
from repro.network.netlist import Netlist


@dataclass
class Lut:
    """One mapped LUT: leaves (AIG nodes), local truth table, root node."""

    root: int
    leaves: Tuple[int, ...]
    table: int  # over 2^len(leaves) bits in leaf order


@dataclass
class LutMapping:
    """A complete LUT cover of an AIG."""

    aig: Aig
    luts: List[Lut]
    po_lits: List[int]  # original PO literals (node + phase)
    depth_of: Dict[int, int] = field(default_factory=dict)

    @property
    def num_luts(self) -> int:
        return len(self.luts)

    @property
    def depth(self) -> int:
        if not self.po_lits:
            return 0
        return max(self.depth_of.get(lit_node(po), 0)
                   for po in self.po_lits)

    def to_netlist(self, name: str = "lutmap") -> Netlist:
        """Expand each LUT into 2-input gates (for verification only)."""
        net = Netlist(name)
        node_of: Dict[int, int] = {0: net.add_const0()}
        for pi_name in self.aig.pi_names:
            node_of[len(node_of)] = net.add_pi(pi_name)
        for lut in self.luts:
            k = len(lut.leaves)
            tt = TruthTable(k, np.array([lut.table], dtype=np.uint64))
            sop = tt.isop()
            leaf_nodes = [node_of[leaf] for leaf in lut.leaves]
            node_of[lut.root] = build_factored_sop(net, sop, leaf_nodes)
        inverted: Dict[int, int] = {}
        for po_lit, po_name in zip(self.po_lits, self.aig.po_names):
            base = node_of[lit_node(po_lit)]
            if lit_compl(po_lit):
                if base not in inverted:
                    inverted[base] = net.add_not(base)
                base = inverted[base]
            net.add_po(po_name, base)
        return net


def map_luts(aig: Aig, k: int = 4, max_cuts: int = 8) -> LutMapping:
    """Map ``aig`` into k-LUTs by depth-then-area-flow cut selection."""
    if k < 2 or k > 6:
        raise ValueError("LUT size must be between 2 and 6")
    cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts)
    refs = aig.ref_counts()
    reachable = sorted(aig.reachable())

    depth: Dict[int, int] = {0: 0}
    area_flow: Dict[int, float] = {0: 0.0}
    best_cut: Dict[int, Cut] = {}
    for p in range(1, aig.num_pis + 1):
        depth[p] = 0
        area_flow[p] = 0.0

    for n in reachable:
        best: Optional[Tuple[int, float, Cut]] = None
        for cut in cuts[n]:
            if len(cut.leaves) < 1 or cut.leaves == (n,):
                continue
            if any(leaf not in depth for leaf in cut.leaves):
                continue
            cut_depth = 1 + max(depth[leaf] for leaf in cut.leaves)
            flow = 1.0 + sum(area_flow[leaf] / max(1, refs[leaf])
                             for leaf in cut.leaves)
            key = (cut_depth, flow, cut)
            if best is None or key[:2] < best[:2]:
                best = key
        if best is None:  # only the trivial cut: treat fanins as leaves
            f0, f1 = aig.fanins(n)
            leaves = tuple(sorted({lit_node(f0), lit_node(f1)} - {0}))
            table = _fanin_table(aig, n, leaves)
            best = (1 + max((depth[l] for l in leaves), default=0),
                    1.0, Cut(leaves, table))
        depth[n] = best[0]
        area_flow[n] = best[1]
        best_cut[n] = best[2]

    # Backward cover extraction.
    luts: List[Lut] = []
    visited = set()
    stack = [lit_node(po) for po in aig.po_lits if aig.is_and(lit_node(po))]
    while stack:
        n = stack.pop()
        if n in visited or not aig.is_and(n):
            continue
        visited.add(n)
        cut = best_cut[n]
        luts.append(Lut(root=n, leaves=cut.leaves, table=cut.table))
        for leaf in cut.leaves:
            if aig.is_and(leaf):
                stack.append(leaf)
    luts.sort(key=lambda l: l.root)  # topological by node id
    return LutMapping(aig=aig, luts=luts, po_lits=list(aig.po_lits),
                      depth_of=depth)


def _fanin_table(aig: Aig, node: int, leaves: Tuple[int, ...]) -> int:
    """Local table of an AND node over its (<= 2) fanin leaves."""
    from repro.synth.rebuild import cut_truthtable

    tt = cut_truthtable(aig, 2 * node, list(leaves))
    return int(tt.words[0]) & ((1 << (1 << len(leaves))) - 1)
