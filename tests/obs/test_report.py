"""Run-report manifest: schema validity, accounting, checked-in copy."""

import json
import os

import pytest

from repro.core.config import RobustnessConfig, fast_config
from repro.core.regressor import LogicRegressor
from repro.obs.report import (REPORT_SCHEMA, build_run_report, main,
                              validate, write_run_report)
from repro.oracle.eco import build_eco_netlist
from repro.oracle.netlist_oracle import NetlistOracle

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


@pytest.fixture(scope="module")
def learned():
    oracle = NetlistOracle(build_eco_netlist(8, 4, seed=5))
    cfg = fast_config(time_limit=30.0, seed=7, jobs=2,
                      enable_optimization=False,
                      robustness=RobustnessConfig(max_retries=0))
    result = LogicRegressor(cfg).learn(oracle)
    return result, cfg, oracle


class TestValidator:
    def test_accepts_valid_instance(self):
        assert validate({"a": 1}, {"type": "object"}) == []

    def test_type_mismatch(self):
        errors = validate("x", {"type": "integer"})
        assert errors and "expected integer" in errors[0]

    def test_bool_is_not_integer(self):
        assert validate(True, {"type": "integer"})
        assert validate(True, {"type": "boolean"}) == []

    def test_required_and_nested_paths(self):
        schema = {"type": "object", "required": ["a"],
                  "properties": {"a": {"type": "object",
                                       "required": ["b"]}}}
        errors = validate({"a": {}}, schema)
        assert errors == ["$.a: missing required key 'b'"]

    def test_items_and_enum(self):
        schema = {"type": "array", "items": {"enum": [1, 2]}}
        assert validate([1, 2, 1], schema) == []
        errors = validate([1, 3], schema)
        assert errors and "$[1]" in errors[0]

    def test_type_list(self):
        schema = {"type": ["object", "null"]}
        assert validate(None, schema) == []
        assert validate({}, schema) == []
        assert validate([], schema)


class TestBuildRunReport:
    def test_validates_against_schema(self, learned):
        result, cfg, _ = learned
        report = build_run_report(result, cfg, accuracy=1.0)
        assert validate(report, REPORT_SCHEMA) == []

    def test_stage_rows_sum_to_billed_total(self, learned):
        result, cfg, _ = learned
        report = build_run_report(result, cfg)
        stage_sum = sum(s["billed_rows"] for s in report["stages"])
        assert stage_sum == report["totals"]["billed_rows"]
        # result.queries includes worker-shard rows the caller's oracle
        # object never saw (jobs=2 here) — the report must agree.
        assert report["totals"]["billed_rows"] == result.queries

    def test_run_section_reflects_config(self, learned):
        result, cfg, _ = learned
        report = build_run_report(result, cfg)
        assert report["run"]["seed"] == 7
        assert report["run"]["jobs"] == 2
        assert report["run"]["num_pis"] == 8
        assert report["run"]["num_pos"] == 4
        assert report["totals"]["outputs"] == 4
        assert report["totals"]["accuracy"] is None

    def test_outputs_cover_every_po(self, learned):
        result, cfg, _ = learned
        report = build_run_report(result, cfg)
        assert sorted(o["index"] for o in report["outputs"]) == \
            list(range(4))
        for out in report["outputs"]:
            assert out["billed_rows"] >= 0

    def test_requires_instrumentation(self, learned):
        result, cfg, _ = learned
        bare = type("R", (), {"instrumentation": None})()
        with pytest.raises(ValueError, match="no instrumentation"):
            build_run_report(bare, cfg)

    def test_write_rejects_invalid_report(self, tmp_path, learned):
        result, cfg, _ = learned
        report = build_run_report(result, cfg)
        del report["totals"]
        with pytest.raises(ValueError, match="schema validation"):
            write_run_report(report, str(tmp_path / "r.json"))


class TestCheckedInSchema:
    def test_docs_copy_matches_constant(self):
        path = os.path.join(REPO_ROOT, "docs", "run_report.schema.json")
        with open(path) as handle:
            assert json.load(handle) == REPORT_SCHEMA


class TestCli:
    def _write(self, tmp_path, learned):
        result, cfg, _ = learned
        path = tmp_path / "r.json"
        write_run_report(build_run_report(result, cfg), str(path))
        return str(path)

    def test_ok_path(self, tmp_path, learned, capsys):
        path = self._write(tmp_path, learned)
        assert main([path]) == 0
        assert capsys.readouterr().out.startswith(f"OK {path}")

    def test_ok_with_external_schema(self, tmp_path, learned):
        path = self._write(tmp_path, learned)
        schema = os.path.join(REPO_ROOT, "docs",
                              "run_report.schema.json")
        assert main([path, "--schema", schema]) == 0

    def test_invalid_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        assert main([str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out
