"""FleetAggregator: dedup, merge totals, snapshot and merged trace."""

import json

from repro.obs.fleet import (FLEET_STATUS_SCHEMA, FleetAggregator,
                             _percentile, main)
from repro.obs.report import validate


def record(job_id, attempt=0, *, billed=100, calls=2, tier="standard",
           tenant="acme", elapsed=1.0, limit=10.0, hits=0,
           trace_origin=None):
    metrics = {
        "counters": {
            "oracle.rows_billed": [
                {"labels": {"stage": "learn", "output": 0},
                 "value": billed}],
            "oracle.calls_billed": [
                {"labels": {"stage": "learn"}, "value": calls}],
            "oracle.rows_served": [
                {"labels": {"layer": "oracle", "stage": "learn"},
                 "value": billed}],
        },
        "gauges": {}, "histograms": {},
    }
    trace = [{"type": "span", "id": 1, "parent": None,
              "name": "pipeline", "ts": 0.0, "dur": elapsed,
              "attrs": {}}]
    return {
        "schema": 1, "job_id": job_id, "attempt": attempt,
        "tier": tier, "tenant": tenant, "status": "verified",
        "queue_latency_seconds": 0.1, "elapsed_seconds": elapsed,
        "time_limit": limit,
        "billing": {"billed_rows": billed, "billed_calls": calls},
        "cache": {"hits": hits, "prefilled_rows": 0,
                  "exported_rows": 0},
        "metrics": metrics, "trace": trace,
        "trace_origin": trace_origin,
    }


def noted(agg, job_id, **kw):
    kw.setdefault("status", "verified")
    kw.setdefault("tier", "standard")
    kw.setdefault("tenant", "acme")
    kw.setdefault("attempt", 0)
    kw.setdefault("queue_latency", 0.1)
    agg.note_job(job_id, **kw)


class TestIngest:
    def test_dedupes_by_job_and_attempt(self):
        agg = FleetAggregator()
        rec = record("j1")
        assert agg.ingest("j1", [rec]) == 1
        # Re-reading the same file (recover path) merges nothing new.
        assert agg.ingest("j1", [rec]) == 0
        assert agg.ingest("j1", [record("j1", attempt=1)]) == 1

    def test_totals_use_latest_attempt_only(self):
        agg = FleetAggregator()
        noted(agg, "j1", attempt=1)
        agg.ingest("j1", [record("j1", 0, billed=999),
                          record("j1", 1, billed=120)])
        snap = agg.snapshot()
        assert snap["totals"]["billed_rows"] == 120

    def test_merge_is_commutative_across_jobs(self):
        one, two = FleetAggregator(), FleetAggregator()
        a, b = record("a", billed=70), record("b", billed=30)
        one.ingest("a", [a])
        one.ingest("b", [b])
        two.ingest("b", [b])
        two.ingest("a", [a])
        assert one.merged_registry().to_dict() \
            == two.merged_registry().to_dict()
        assert one.snapshot(now=0)["totals"] \
            == two.snapshot(now=0)["totals"]


class TestSnapshot:
    def _populated(self):
        agg = FleetAggregator()
        noted(agg, "j1", tier="interactive", queue_latency=0.2)
        noted(agg, "j2", tier="batch", tenant="beta", attempt=1,
              queue_latency=3.0)
        noted(agg, "j3", status="failed", queue_latency=None)
        agg.ingest("j1", [record("j1", tier="interactive",
                                 billed=100, hits=5)])
        agg.ingest("j2", [record("j2", 1, tier="batch",
                                 tenant="beta", billed=50,
                                 elapsed=9.0, limit=10.0)])
        agg.note_file("/spool/jobs/j1/telemetry.jsonl")
        agg.note_file("/spool/jobs/j2/telemetry.jsonl", 1)
        return agg

    def test_snapshot_validates_against_schema(self):
        snap = self._populated().snapshot()
        assert validate(snap, FLEET_STATUS_SCHEMA) == []

    def test_status_tier_tenant_rollups(self):
        snap = self._populated().snapshot()
        assert snap["jobs"]["total"] == 3
        assert snap["jobs"]["by_status"] == {"failed": 1,
                                             "verified": 2}
        assert snap["tiers"]["interactive"]["billed_rows"] == 100
        assert snap["tiers"]["interactive"]["cache_hits"] == 5
        assert snap["tiers"]["batch"]["budget_burn"] == 0.9
        assert snap["tenants"]["beta"]["billed_rows"] == 50
        latency = snap["tiers"]["batch"]["queue_latency"]
        assert latency["count"] == 1 and latency["p95"] == 3.0

    def test_derived_dispatch_counts_without_stats(self):
        snap = self._populated().snapshot()
        # j1 (1 attempt) + j2 (2 attempts) + failed j3 (1 attempt).
        assert snap["jobs"]["dispatched"] == 4
        assert snap["jobs"]["retries"] == 1

    def test_scheduler_stats_override_derived(self):
        stats = {"dispatched": 9, "redispatches": 3, "finished": {}}
        snap = self._populated().snapshot(stats=stats)
        assert snap["jobs"]["dispatched"] == 9
        assert snap["jobs"]["retries"] == 3
        assert snap["scheduler"] == stats

    def test_corrupt_file_accounting(self):
        snap = self._populated().snapshot()
        assert snap["telemetry"]["files"] == 2
        assert snap["telemetry"]["corrupt_files"] == 1
        assert snap["telemetry"]["corrupt_lines"] == 1

    def test_corrupt_count_clears_when_file_heals(self):
        agg = self._populated()
        agg.note_file("/spool/jobs/j2/telemetry.jsonl", 0)
        assert agg.snapshot()["telemetry"]["corrupt_files"] == 0

    def test_verification_counts(self):
        snap = self._populated().snapshot()
        assert snap["verification"] == {"checked": 3, "failed": 1}


class TestMergedTrace:
    def test_one_pid_track_per_job_attempt(self):
        agg = FleetAggregator()
        agg.ingest("a", [record("a", trace_origin=100.0)])
        agg.ingest("b", [record("b", 0, trace_origin=102.5),
                         record("b", 1, trace_origin=104.0)])
        trace = agg.merged_chrome_trace()
        events = trace["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M"}
        assert names == {"a (attempt 0)", "b (attempt 0)",
                         "b (attempt 1)"}
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["job_id"] for e in spans} == {"a", "b"}
        assert len({e["pid"] for e in spans}) == 3
        # Tracks align on trace_origin: job b starts 2.5s after a.
        by_job = {(e["args"]["job_id"], e["args"]["attempt"]): e["ts"]
                  for e in spans}
        assert by_job[("b", 0)] - by_job[("a", 0)] == 2.5e6

    def test_missing_origin_defaults_to_base(self):
        agg = FleetAggregator()
        agg.ingest("a", [record("a")])
        spans = [e for e in agg.merged_chrome_trace()["traceEvents"]
                 if e["ph"] == "X"]
        assert spans[0]["ts"] == 0.0


class TestPercentile:
    def test_interpolates(self):
        assert _percentile([0.0, 10.0], 0.5) == 5.0
        assert _percentile([1.0, 2.0, 3.0], 1.0) == 3.0
        assert _percentile([7.0], 0.95) == 7.0


class TestCli:
    def test_validates_good_and_bad_files(self, tmp_path, capsys):
        agg = FleetAggregator()
        noted(agg, "j1")
        agg.ingest("j1", [record("j1")])
        good = tmp_path / "fleet_status.json"
        good.write_text(json.dumps(agg.snapshot()))
        assert main([str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        assert main([str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out
