"""AND-tree balancing (ABC's ``balance``).

Collects maximal multi-input conjunctions along non-complemented AND edges
and rebuilds them as balanced trees, reducing depth and — through strashing
of the sorted operand list — often size.
"""

from __future__ import annotations

from typing import Dict, List

from repro.aig.aig import Aig, lit_compl, lit_node
from repro.synth.rebuild import copy_pos, identity_map, map_lit


def balance(aig: Aig) -> Aig:
    """Return a balanced, strashed copy."""
    new = Aig(pi_names=list(aig.pi_names))
    lit_map = identity_map(aig, new)
    refs = aig.ref_counts()
    for n in sorted(aig.reachable()):
        leaves = _collect_and_leaves(aig, n, refs)
        mapped = sorted(map_lit(lit_map, l) for l in leaves)
        lit_map[n] = new.and_many(mapped)
    copy_pos(aig, new, lit_map)
    return new


def _collect_and_leaves(aig: Aig, node: int, refs: List[int]) -> List[int]:
    """Leaves of the maximal single-fanout AND tree rooted at ``node``.

    Only non-complemented edges to single-fanout AND nodes are flattened:
    a multiply referenced subtree stays shared rather than duplicated.
    """
    leaves: List[int] = []
    stack = [aig.fanins(node)[0], aig.fanins(node)[1]]
    while stack:
        literal = stack.pop()
        child = lit_node(literal)
        if (not lit_compl(literal) and aig.is_and(child)
                and refs[child] <= 1):
            f0, f1 = aig.fanins(child)
            stack.append(f0)
            stack.append(f1)
        else:
            leaves.append(literal)
    return leaves
