"""DIMACS CNF reading and writing.

Lets the CDCL solver exchange problems with standard SAT tooling and lets
tests replay canonical instances.
"""

from __future__ import annotations

from typing import List, TextIO

from repro.sat.cnf import Cnf


def write_dimacs(cnf: Cnf, stream: TextIO,
                 comment: str = "written by repro") -> None:
    if comment:
        for line in comment.splitlines():
            stream.write(f"c {line}\n")
    stream.write(f"p cnf {cnf.num_vars} {len(cnf.clauses)}\n")
    for clause in cnf.clauses:
        stream.write(" ".join(str(l) for l in clause) + " 0\n")


def read_dimacs(stream: TextIO) -> Cnf:
    cnf = Cnf()
    declared_vars = None
    declared_clauses = None
    current: List[int] = []
    for raw in stream:
        line = raw.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"bad problem line: {line!r}")
            declared_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                cnf.clauses.append(current)
                current = []
            else:
                current.append(lit)
                cnf.num_vars = max(cnf.num_vars, abs(lit))
    if current:
        cnf.clauses.append(current)  # tolerate a missing trailing 0
    if declared_vars is not None:
        cnf.num_vars = max(cnf.num_vars, declared_vars)
    if declared_clauses is not None \
            and len(cnf.clauses) != declared_clauses:
        raise ValueError(
            f"clause count mismatch: header says {declared_clauses}, "
            f"found {len(cnf.clauses)}")
    return cnf
