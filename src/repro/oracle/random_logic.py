"""Seeded random logic cones and mutations.

The ECO and NEQ benchmark categories are built from these: random gate
cones stand in for the industrial "logic difference" and "non-equivalent
cone" circuits of the contest, with support width and cone size as the
difficulty knobs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.network.netlist import GateOp, Netlist

_CONE_OPS = [GateOp.AND, GateOp.OR, GateOp.XOR, GateOp.NAND, GateOp.NOR]
# XOR-rich cones are much harder for cube-based learners — used for the
# hard NEQ cases.
_XOR_HEAVY_OPS = [GateOp.XOR, GateOp.XNOR, GateOp.AND, GateOp.OR]


def random_cone(net: Netlist, rng: np.random.Generator,
                support: Sequence[int], num_gates: int,
                xor_heavy: bool = False) -> int:
    """Grow a random cone over ``support`` nodes; returns the root node.

    Gates pick two distinct earlier signals, biased toward recent ones so
    the cone is connected and every support node tends to be used.
    """
    if len(support) < 2:
        raise ValueError("need at least two support nodes")
    ops = _XOR_HEAVY_OPS if xor_heavy else _CONE_OPS
    signals: List[int] = list(support)
    # First layer: pair up all support nodes so each one matters.
    order = list(rng.permutation(len(support)))
    for i in range(0, len(order) - 1, 2):
        op = ops[rng.integers(len(ops))]
        a, b = signals[order[i]], signals[order[i + 1]]
        if rng.random() < 0.3:
            a = net.add_not(a)
        signals.append(net.add_gate(op, a, b))
    used = set()
    for _ in range(max(0, num_gates - len(order) // 2)):
        op = ops[rng.integers(len(ops))]
        # Bias toward recent signals for depth.
        idx_a = _biased_index(rng, len(signals))
        idx_b = _biased_index(rng, len(signals))
        if idx_a == idx_b:
            idx_b = (idx_b + 1) % len(signals)
        a, b = signals[idx_a], signals[idx_b]
        used.add(a)
        used.add(b)
        if rng.random() < 0.2:
            a = net.add_not(a)
        signals.append(net.add_gate(op, a, b))
    # Merge every dangling intermediate into the root so the whole cone
    # contributes to the function (no dead logic).
    root = signals[-1]
    dangling = [s for s in signals[len(support):-1] if s not in used]
    for s in dangling:
        op = ops[rng.integers(len(ops))]
        root = net.add_gate(op, root, s)
    return root


def _biased_index(rng: np.random.Generator, n: int) -> int:
    """Index in [0, n) biased toward the high (recent) end."""
    u = rng.random()
    return min(n - 1, int(n * (u ** 0.5)))


def mutated_copy(net: Netlist, rng: np.random.Generator,
                 num_mutations: int = 1) -> Netlist:
    """Copy a netlist and perturb a few gates (op flips / input rewires).

    This produces the "revised" circuit of an ECO pair or the second,
    non-equivalent cone of an NEQ miter.
    """
    if any(g.op is GateOp.PI for g in net.gates[net.num_pis:]):
        raise ValueError("mutated_copy requires PIs as an id prefix")
    out = Netlist(net.name + "_mut")
    for name in net.pi_names:
        out.add_pi(name)
    gate_indices = [i for i, g in enumerate(net.gates)
                    if g.op.arity == 2]
    if not gate_indices:
        raise ValueError("nothing to mutate")
    targets = set(rng.choice(gate_indices,
                             size=min(num_mutations, len(gate_indices)),
                             replace=False).tolist())
    for i, gate in enumerate(net.gates):
        if gate.op is GateOp.PI:
            continue
        op = gate.op
        fanins = list(gate.fanins)
        if i in targets:
            choice = rng.random()
            if choice < 0.5:
                alternatives = [o for o in _CONE_OPS if o is not op]
                op = alternatives[rng.integers(len(alternatives))]
            elif fanins:
                # Rewire one fanin to a random earlier signal.
                slot = int(rng.integers(len(fanins)))
                fanins[slot] = int(rng.integers(i))
        out.add_gate(op, *fanins)
    for name, node in zip(net.po_names, net.po_nodes):
        out.add_po(name, node)
    return out


def random_support(rng: np.random.Generator, candidates: Sequence[int],
                   size: int) -> List[int]:
    """Pick a random support subset of the candidate nodes."""
    size = min(size, len(candidates))
    return sorted(rng.choice(candidates, size=size, replace=False).tolist())
