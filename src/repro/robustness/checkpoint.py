"""Per-output checkpointing: a killed run resumes instead of restarting.

The unit of durable progress is one completed primary output — the same
granularity as the paper's per-output decomposition.  After each output's
cover is learned (or degraded), the store appends a JSON record holding
the learned ``(onset, offset)`` cover pair, the support used, and the
``OutputReport`` fields, then atomically replaces the checkpoint file
(write-to-temp + ``os.replace``), so a kill at any instant leaves either
the previous or the next consistent snapshot — never a torn file.

A fingerprint of the oracle interface (PI/PO names) and the learner seed
guards against resuming into a different problem; mismatches raise
:class:`CheckpointError` rather than silently grafting foreign covers.

Integrity: the file and every output entry carry a sha256 digest of
their canonical JSON.  A truncated, unparsable or digest-mismatched file
logs a warning and restarts the run fresh — a corrupt checkpoint must
cost the lost progress, not the resume; a single corrupt *entry* costs
only that output, the rest restore normally.  Only a well-formed file
that provably belongs to a *different problem* (version or fingerprint
mismatch) still raises, because restarting there would silently discard
a checkpoint the user explicitly asked to resume.

Covers are stored positionally: each cube is a list of ``[var, phase]``
literals over the full PI universe, which survives JSON round-trips
exactly, so a restored output reproduces the uninterrupted run's netlist
for that output bit-for-bit.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.fbdt import FbdtStats, LearnedCover
from repro.logic.cube import Cube
from repro.logic.sop import Sop
# Re-exported: payload_digest was born here and grew into the storage
# layer's digest framing; historical importers keep working.
from repro.robustness.storage import get_storage, payload_digest  # noqa: F401

FORMAT_VERSION = 2
"""Version 2 added sha256 digests to the file and each entry."""

log = logging.getLogger(__name__)


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable or belongs to another problem."""


@dataclass
class CheckpointEntry:
    """One completed output, as persisted."""

    po_index: int
    po_name: str
    method: str
    detail: str
    support: List[int]
    cover: LearnedCover

    def to_json(self) -> dict:
        return {
            "po_index": self.po_index,
            "po_name": self.po_name,
            "method": self.method,
            "detail": self.detail,
            "support": list(self.support),
            "cover": cover_to_json(self.cover),
        }

    @classmethod
    def from_json(cls, data: dict, num_pis: int) -> "CheckpointEntry":
        return cls(po_index=int(data["po_index"]),
                   po_name=data["po_name"],
                   method=data["method"],
                   detail=data.get("detail", ""),
                   support=[int(v) for v in data.get("support", [])],
                   cover=cover_from_json(data["cover"], num_pis))


def cover_to_json(cover: LearnedCover) -> dict:
    return {
        "onset": _sop_to_json(cover.onset),
        "offset": _sop_to_json(cover.offset),
        "use_offset": bool(cover.use_offset),
        "stats": asdict(cover.stats),
    }


def cover_from_json(data: dict, num_pis: int) -> LearnedCover:
    known = {f for f in FbdtStats.__dataclass_fields__}
    stats = FbdtStats(**{k: v for k, v in data.get("stats", {}).items()
                         if k in known})
    return LearnedCover(onset=_sop_from_json(data["onset"], num_pis),
                        offset=_sop_from_json(data["offset"], num_pis),
                        use_offset=bool(data["use_offset"]),
                        stats=stats)


def _sop_to_json(sop: Sop) -> List[List[List[int]]]:
    return [[[int(v), int(p)] for v, p in cube.literals()]
            for cube in sop.cubes]


def _sop_from_json(cubes: Sequence, num_pis: int) -> Sop:
    return Sop([Cube({int(v): int(p) for v, p in lits})
                for lits in cubes], num_pis)


class CheckpointStore:
    """Read/write access to one checkpoint file.

    ``open_for(...)`` binds the store to a problem fingerprint.  With
    ``resume=True`` an existing compatible file is loaded (an
    incompatible one raises); with ``resume=False`` any existing file is
    discarded and the run starts a fresh snapshot.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._fingerprint: Optional[dict] = None
        self._entries: Dict[int, CheckpointEntry] = {}
        self._num_pis = 0

    # -- lifecycle -----------------------------------------------------------

    def open_for(self, pi_names: Sequence[str], po_names: Sequence[str],
                 seed: int, resume: bool) -> Dict[int, CheckpointEntry]:
        """Bind to a problem; return restored entries (empty if fresh)."""
        self._fingerprint = {
            "pi_names": list(pi_names),
            "po_names": list(po_names),
            "seed": int(seed),
        }
        self._num_pis = len(pi_names)
        self._entries = {}
        if resume and os.path.exists(self.path):
            self._entries = self._load()
        else:
            self._write()  # start (or truncate to) an empty snapshot
        return dict(self._entries)

    def record_output(self, entry: CheckpointEntry) -> None:
        """Persist one completed output (atomic replace)."""
        if self._fingerprint is None:
            raise CheckpointError("store not opened; call open_for first")
        self._entries[entry.po_index] = entry
        self._write()

    @property
    def completed(self) -> List[int]:
        return sorted(self._entries)

    # -- file format ---------------------------------------------------------

    def _load(self) -> Dict[int, CheckpointEntry]:
        try:
            with open(self.path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            # Truncated / garbage file: a kill or disk fault, not a
            # user error.  Cost is the lost progress, not the resume.
            log.warning("checkpoint %r unreadable (%s); restarting "
                        "from scratch", self.path, exc)
            return {}
        if not isinstance(data, dict):
            log.warning("checkpoint %r is not an object; restarting "
                        "from scratch", self.path)
            return {}
        stored_digest = data.pop("digest", None)
        if stored_digest != payload_digest(data):
            log.warning("checkpoint %r failed its integrity check; "
                        "restarting from scratch", self.path)
            return {}
        # Past the digest the file is provably what a run wrote, so a
        # version or fingerprint mismatch means a *different problem* —
        # raising beats silently discarding progress the user asked for.
        if data.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint version {data.get('version')!r} is not "
                f"{FORMAT_VERSION}")
        if data.get("fingerprint") != self._fingerprint:
            raise CheckpointError(
                "checkpoint belongs to a different problem "
                "(oracle interface or seed mismatch)")
        entries = {}
        for item in data.get("outputs", []):
            entry_digest = item.pop("digest", None)
            if entry_digest != payload_digest(item):
                log.warning(
                    "checkpoint entry for output %r is corrupt; that "
                    "output will be re-learned",
                    item.get("po_name", "?"))
                continue
            entry = CheckpointEntry.from_json(item, self._num_pis)
            entries[entry.po_index] = entry
        return entries

    def _write(self) -> None:
        outputs = []
        for j in sorted(self._entries):
            item = self._entries[j].to_json()
            item["digest"] = payload_digest(item)
            outputs.append(item)
        data = {
            "version": FORMAT_VERSION,
            "fingerprint": self._fingerprint,
            "outputs": outputs,
        }
        get_storage().atomic_write_json(self.path, data,
                                        writer="checkpoint",
                                        suffix=".ckpt.tmp")
