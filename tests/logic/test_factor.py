"""Unit tests for quick factoring."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import Cube
from repro.logic.factor import (FactoredNode, factor,
                                factored_literal_count)
from repro.logic.sop import Sop
from repro.logic.truthtable import TruthTable


def _eval_node(node: FactoredNode, bits) -> bool:
    if node.kind == "const0":
        return False
    if node.kind == "const1":
        return True
    if node.kind == "lit":
        return bool(bits[node.var]) == bool(node.phase)
    if node.kind == "and":
        return all(_eval_node(c, bits) for c in node.children)
    return any(_eval_node(c, bits) for c in node.children)


class TestFactor:
    def test_constants(self):
        assert factor(Sop.zero(3)).kind == "const0"
        assert factor(Sop.one(3)).kind == "const1"

    def test_single_cube_is_and(self):
        node = factor(Sop.from_strings(["110"]))
        assert node.kind == "and"
        assert node.literal_count() == 3  # x0 & x1 & !x2

    def test_common_literal_extracted(self):
        # ab | ac | ad -> a(b|c|d): 4 literals instead of 6.
        s = Sop([Cube({0: 1, 1: 1}), Cube({0: 1, 2: 1}),
                 Cube({0: 1, 3: 1})], 4)
        node = factor(s)
        assert node.literal_count() == 4

    def test_no_sharing_stays_flat(self):
        s = Sop([Cube({0: 1}), Cube({1: 1})], 2)
        node = factor(s)
        assert node.kind == "or"
        assert node.literal_count() == 2

    def test_str_rendering(self):
        node = factor(Sop.from_strings(["10"]))
        assert "x0" in str(node) and "!x1" in str(node)

    def test_literal_count_helper(self):
        s = Sop([Cube({0: 1, 1: 1}), Cube({0: 1, 2: 1})], 3)
        assert factored_literal_count(s) == 3  # a(b|c)


def sops(num_vars=5, max_cubes=8):
    cube = st.dictionaries(st.integers(0, num_vars - 1),
                           st.integers(0, 1), max_size=num_vars) \
        .map(lambda d: Cube(d))
    return st.lists(cube, max_size=max_cubes) \
        .map(lambda cs: Sop(cs, num_vars))


@given(s=sops())
@settings(max_examples=200, deadline=None)
def test_factoring_preserves_function(s):
    node = factor(s)
    for m in range(32):
        bits = [(m >> v) & 1 for v in range(5)]
        assert _eval_node(node, bits) == bool(s.evaluate_one(bits))


@given(s=sops())
@settings(max_examples=150, deadline=None)
def test_factoring_never_increases_literals(s):
    assert factor(s).literal_count() <= s.literal_count()
