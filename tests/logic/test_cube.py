"""Unit tests for cube algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import Cube


def cubes(max_vars=6):
    """Hypothesis strategy for random cubes over max_vars variables."""
    return st.dictionaries(st.integers(0, max_vars - 1),
                           st.integers(0, 1), max_size=max_vars) \
        .map(lambda d: Cube(d))


class TestConstruction:
    def test_empty_cube_is_constant_one(self):
        c = Cube.empty()
        assert c.is_empty()
        assert len(c) == 0
        assert c.num_minterms(5) == 32

    def test_from_literals(self):
        c = Cube.from_literals([(0, 1), (2, 0)])
        assert c.phase(0) == 1
        assert c.phase(2) == 0
        assert c.phase(1) is None

    def test_conflicting_literals_raise(self):
        with pytest.raises(ValueError):
            Cube.from_literals([(0, 1), (0, 0)])

    def test_bad_phase_rejected(self):
        with pytest.raises(ValueError):
            Cube({0: 2})

    def test_negative_variable_rejected(self):
        with pytest.raises(ValueError):
            Cube({-1: 0})

    def test_from_assignment(self):
        c = Cube.from_assignment([1, 0, 1])
        assert c.phase(0) == 1 and c.phase(1) == 0 and c.phase(2) == 1

    def test_from_assignment_selected_variables(self):
        c = Cube.from_assignment([1, 0], variables=[3, 7])
        assert c.phase(3) == 1 and c.phase(7) == 0
        assert 0 not in c

    def test_string_round_trip(self):
        c = Cube.from_string("1-0-")
        assert c.to_string(4) == "1-0-"
        assert c.phase(0) == 1 and c.phase(2) == 0

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Cube.from_string("1x0")


class TestAlgebra:
    def test_with_literal_extends(self):
        c = Cube({0: 1}).with_literal(3, 0)
        assert c.phase(3) == 0 and c.phase(0) == 1

    def test_with_literal_conflict_raises(self):
        with pytest.raises(ValueError):
            Cube({0: 1}).with_literal(0, 0)

    def test_with_literal_same_phase_is_noop(self):
        c = Cube({0: 1})
        assert c.with_literal(0, 1) == c

    def test_conjoin(self):
        a = Cube({0: 1})
        b = Cube({1: 0})
        assert a.conjoin(b) == Cube({0: 1, 1: 0})

    def test_conjoin_conflict_is_none(self):
        assert Cube({0: 1}).conjoin(Cube({0: 0})) is None

    def test_cofactor_frees_variable(self):
        c = Cube({0: 1, 1: 0})
        assert c.cofactor(0, 1) == Cube({1: 0})

    def test_cofactor_contradiction_is_none(self):
        assert Cube({0: 1}).cofactor(0, 0) is None

    def test_cofactor_free_variable_is_identity(self):
        c = Cube({0: 1})
        assert c.cofactor(5, 0) is c

    def test_containment(self):
        big = Cube({0: 1})
        small = Cube({0: 1, 1: 0})
        assert big.contains(small)
        assert not small.contains(big)
        assert Cube.empty().contains(big)

    def test_distance_counts_conflicts(self):
        a = Cube({0: 1, 1: 0, 2: 1})
        b = Cube({0: 0, 1: 1, 3: 0})
        assert a.distance(b) == 2

    def test_intersects(self):
        assert Cube({0: 1}).intersects(Cube({1: 0}))
        assert not Cube({0: 1}).intersects(Cube({0: 0}))

    def test_consensus(self):
        a = Cube({0: 1, 1: 1})
        b = Cube({0: 0, 2: 1})
        assert a.consensus(b) == Cube({1: 1, 2: 1})

    def test_consensus_distance_two_is_none(self):
        a = Cube({0: 1, 1: 1})
        b = Cube({0: 0, 1: 0})
        assert a.consensus(b) is None

    def test_merge_adjacent(self):
        a = Cube({0: 1, 1: 1})
        b = Cube({0: 1, 1: 0})
        assert a.merge(b) == Cube({0: 1})

    def test_merge_different_support_is_none(self):
        assert Cube({0: 1}).merge(Cube({1: 1})) is None


class TestEvaluation:
    def test_evaluate_batch(self):
        c = Cube({0: 1, 2: 0})
        pats = np.array([[1, 0, 0], [1, 1, 1], [0, 0, 0]], dtype=np.uint8)
        assert c.evaluate(pats).tolist() == [True, False, False]

    def test_empty_cube_satisfied_everywhere(self):
        pats = np.zeros((4, 3), dtype=np.uint8)
        assert Cube.empty().evaluate(pats).all()

    def test_apply_to_forces_literals(self):
        c = Cube({1: 1})
        pats = np.zeros((3, 3), dtype=np.uint8)
        c.apply_to(pats)
        assert (pats[:, 1] == 1).all()
        assert c.evaluate(pats).all()


class TestDunder:
    def test_equality_and_hash(self):
        assert Cube({0: 1, 1: 0}) == Cube({1: 0, 0: 1})
        assert hash(Cube({0: 1})) == hash(Cube({0: 1}))

    def test_repr_mentions_phases(self):
        r = repr(Cube({0: 1, 2: 0}))
        assert "x0" in r and "!x2" in r

    def test_contains_var(self):
        c = Cube({3: 0})
        assert 3 in c and 0 not in c


@given(a=cubes(), b=cubes())
@settings(max_examples=200, deadline=None)
def test_conjoin_is_intersection_of_minterm_sets(a, b):
    """x |= a&b  iff  x |= a and x |= b, on every minterm of B^6."""
    pats = np.array([[(m >> v) & 1 for v in range(6)]
                     for m in range(64)], dtype=np.uint8)
    both = a.evaluate(pats) & b.evaluate(pats)
    c = a.conjoin(b)
    if c is None:
        assert not both.any()
    else:
        assert (c.evaluate(pats) == both).all()


@given(a=cubes(), b=cubes())
@settings(max_examples=200, deadline=None)
def test_distance_zero_iff_intersecting(a, b):
    assert (a.distance(b) == 0) == a.intersects(b)


@given(c=cubes())
@settings(max_examples=100, deadline=None)
def test_minterm_count_matches_evaluation(c):
    pats = np.array([[(m >> v) & 1 for v in range(6)]
                     for m in range(64)], dtype=np.uint8)
    assert int(c.evaluate(pats).sum()) == c.num_minterms(6)


@given(a=cubes(), b=cubes())
@settings(max_examples=150, deadline=None)
def test_merge_preserves_union(a, b):
    m = a.merge(b)
    if m is None:
        return
    pats = np.array([[(x >> v) & 1 for v in range(6)]
                     for x in range(64)], dtype=np.uint8)
    union = a.evaluate(pats) | b.evaluate(pats)
    assert (m.evaluate(pats) == union).all()
