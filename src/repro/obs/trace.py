"""Span-based structured tracing with JSONL and Chrome trace export.

A :class:`Tracer` records a tree of :class:`Span` intervals (opened and
closed as context managers) plus point-in-time events, all stamped with
monotonic timestamps relative to the tracer's epoch.  Two export
formats:

- **JSONL** (:meth:`Tracer.write_jsonl`): one JSON object per line, the
  machine-readable record stream (schema in ``docs/OBSERVABILITY.md``);
- **Chrome ``trace_event``** (:meth:`Tracer.write_chrome_trace`): the
  ``{"traceEvents": [...]}`` JSON that Perfetto and ``chrome://tracing``
  load directly.

Worker processes build their own tracers; the parent adopts their record
lists with :meth:`Tracer.adopt`, re-assigning ids deterministically in
fold-back order.  The determinism contract covers span/event names,
nesting, ordering and attributes — never timestamps (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    try:  # numpy scalars expose item()
        return value.item()
    except AttributeError:
        return str(value)


@dataclass
class Span:
    """One timed interval of work, possibly nested under a parent."""

    span_id: int
    name: str
    parent_id: Optional[int]
    t_start: float
    t_end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    cpu_start: Optional[float] = None
    cpu_end: Optional[float] = None

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        for key, value in attrs.items():
            self.attrs[key] = _jsonable(value)

    @property
    def duration(self) -> float:
        end = self.t_end if self.t_end is not None else self.t_start
        return max(0.0, end - self.t_start)

    def to_record(self) -> Dict[str, Any]:
        record = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": round(self.t_start, 9),
            "dur": round(self.duration, 9),
            "attrs": self.attrs,
        }
        if self.cpu_start is not None and self.cpu_end is not None:
            record["cpu"] = round(
                max(0.0, self.cpu_end - self.cpu_start), 9)
        return record


class Tracer:
    """Collect spans and events; export JSONL / Chrome trace JSON.

    Records accumulate in *emission order*: events when emitted, spans
    when closed (so a parent span's record follows its children's, like
    Chrome's complete events).  Open spans are excluded from exports.
    """

    def __init__(self, clock=time.monotonic, cpu_clock=None):
        self._clock = clock
        self._epoch = clock()
        self._cpu_clock = cpu_clock
        self._records: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # -- recording -----------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span; it closes (and is recorded) on exit."""
        span = Span(span_id=self._next_id, name=name,
                    parent_id=self._stack[-1].span_id if self._stack
                    else None,
                    t_start=self._now())
        self._next_id += 1
        span.set(**attrs)
        if self._cpu_clock is not None:
            span.cpu_start = self._cpu_clock()
        self._stack.append(span)
        try:
            yield span
        finally:
            span.t_end = self._now()
            if self._cpu_clock is not None:
                span.cpu_end = self._cpu_clock()
            self._stack.pop()
            self._records.append(span.to_record())

    def event(self, name: str, **attrs: Any) -> None:
        """Record a typed point-in-time event under the open span."""
        self._records.append({
            "type": "event",
            "id": self._next_id,
            "span": self._stack[-1].span_id if self._stack else None,
            "name": name,
            "ts": round(self._now(), 9),
            "attrs": {k: _jsonable(v) for k, v in attrs.items()},
        })
        self._next_id += 1

    # -- merging -------------------------------------------------------------

    def adopt(self, records: List[Dict[str, Any]],
              parent_id: Optional[int] = None,
              at: Optional[float] = None) -> None:
        """Fold a child tracer's records into this one.

        Ids are re-assigned from this tracer's counter (call order is
        the determinism contract, so adopt children in fold-back order).
        Child timestamps are shifted by ``at`` (default: the open span's
        start, else the current time) — they were measured against the
        child's own epoch, typically a worker process.
        """
        if at is None:
            at = self._stack[-1].t_start if self._stack else self._now()
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        # Two passes: spans are recorded *after* their children, so a
        # child's parent ref points at a record later in the list — the
        # full id map must exist before any ref is rewritten.
        remap: Dict[int, int] = {}
        for rec in records:
            remap[rec["id"]] = self._next_id
            self._next_id += 1
        for rec in records:
            new = dict(rec)
            new["id"] = remap[rec["id"]]
            key = "parent" if rec["type"] == "span" else "span"
            old_ref = rec.get(key)
            new[key] = remap.get(old_ref, parent_id) \
                if old_ref is not None else parent_id
            new["ts"] = round(rec["ts"] + at, 9)
            self._records.append(new)

    # -- export --------------------------------------------------------------

    def to_records(self) -> List[Dict[str, Any]]:
        """Completed records in emission order (JSONL payload)."""
        return list(self._records)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for rec in self._records:
                handle.write(json.dumps(rec, sort_keys=True) + "\n")

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` JSON object (Perfetto-loadable)."""
        events: List[Dict[str, Any]] = []
        for rec in self._records:
            if rec["type"] == "span":
                events.append({
                    "name": rec["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": rec["ts"] * 1e6,
                    "dur": rec["dur"] * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": rec["attrs"],
                })
            else:
                events.append({
                    "name": rec["name"],
                    "cat": "repro",
                    "ph": "i",
                    "s": "t",
                    "ts": rec["ts"] * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": rec["attrs"],
                })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)


def export_trace(tracer: Tracer, path: str) -> List[str]:
    """Write ``path`` in the format its extension implies.

    ``*.jsonl`` gets the JSONL record stream *plus* a sibling
    ``<stem>.trace.json`` Chrome export (so a ``--trace-out t.jsonl``
    run is always Perfetto-loadable); any other extension gets the
    Chrome JSON directly.  Returns the paths written.
    """
    if path.endswith(".jsonl"):
        tracer.write_jsonl(path)
        chrome = path[:-len(".jsonl")] + ".trace.json"
        tracer.write_chrome_trace(chrome)
        return [path, chrome]
    tracer.write_chrome_trace(path)
    return [path]
