"""Configuration of the circuit-learning pipeline.

Defaults follow the paper's reported constants where given (``r = 7200``
for support identification, ``r = 60`` per tree node, exhaustive-enumeration
threshold 18) with the sampling volume scaled down by default because the
reference implementation is C++ on a contest machine and ours is a Python
prototype; every constant is a knob so the benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


@dataclass
class RobustnessConfig:
    """Knobs of the fault-tolerant execution layer (``repro.robustness``).

    The defaults keep a clean oracle's behaviour unchanged: no retry
    wrapper, no checkpointing, but per-output isolation on — an output
    that crashes or exhausts the budget degrades to its best partial (or
    constant-majority) cover instead of aborting the run.
    """

    max_retries: int = 0
    """Transparent retries per failed oracle query batch (0 disables the
    retry wrapper entirely)."""

    retry_base_delay: float = 0.05
    """Backoff before the first retry, seconds; doubles per attempt."""

    retry_max_delay: float = 2.0
    """Cap on a single backoff delay."""

    retry_jitter: float = 0.5
    """Random scale-up of each delay (de-correlates retry storms)."""

    cache_queries: bool = True
    """Memoize answered assignments inside the retry wrapper so retried
    or repeated queries never double-bill the query budget."""

    isolate_outputs: bool = True
    """Catch per-output failures at the output boundary and emit a
    degraded cover instead of propagating.  ``False`` restores the
    fail-fast behaviour (useful when debugging the learner itself)."""

    hard_slack: float = 1.5
    """Hard-tier multiplier on each output's fair-share soft deadline
    (see ``repro.robustness.deadline.DeadlineManager``)."""

    checkpoint_path: Optional[str] = None
    """Write a per-output checkpoint file here (None disables)."""

    resume: bool = False
    """Load ``checkpoint_path`` at startup and skip already-learned
    outputs."""

    # -- corruption auditing (repro.robustness.audit) ----------------------
    audit_rate: float = 0.0
    """Fraction of delivered oracle rows the
    :class:`~repro.robustness.audit.AuditingOracle` re-queries (0
    disables the audit wrapper).  Selection is a pure per-row hash, so
    audit counters are identical at any ``--jobs`` value."""

    audit_votes: int = 3
    """Copies majority-voted when an audited row disagrees (odd,
    >= 3)."""

    # -- verify-and-repair (repro.robustness.verify) -----------------------
    verify: bool = True
    """Certify every learned output against fresh oracle rows after
    optimization and repair the ones that fail (the contest target is
    99.99%; a run that cannot certify tags the output honestly instead
    of shipping it silently wrong)."""

    verify_target: float = 0.9999
    """Per-output hit rate the Wilson lower bound is checked against."""

    verify_confidence: float = 0.95
    """One-sided confidence of the verification bound."""

    verify_samples: Optional[int] = None
    """Fixed verification rows per output; ``None`` adapts to
    ``verify_rows_fraction`` of the learn-stage billed rows, clamped to
    ``[verify_min_samples, rows_to_certify(target)]``."""

    verify_rows_fraction: float = 0.08
    """Adaptive share of learn-billed rows spent on verification."""

    verify_min_samples: int = 256
    """Floor on the adaptive verification sample per output."""

    max_repair_rounds: int = 2
    """Repair attempts per failing output (patch cubes first, re-learn
    last; 0 reports ``verify-failed`` without repairing)."""

    repair_rows_fraction: float = 0.05
    """Cap on repair-channel oracle rows, as a share of learn-billed
    rows."""

    # -- worker supervision (repro.robustness.supervisor) ------------------
    heartbeat_interval: float = 0.25
    """Seconds between worker heartbeats while a task runs."""

    heartbeat_timeout: float = 15.0
    """A busy worker silent this long is terminated and its task
    re-dispatched."""

    task_wall_grace: float = 5.0
    """Slack on top of a task's hard deadline before the supervisor
    kills the worker outright."""

    max_redispatches: int = 1
    """Fresh-worker retries per task whose worker crashed or hung;
    beyond this the task is quarantined as a poison task."""

    redispatch_budget_factor: float = 0.5
    """Scale on a re-dispatched task's soft/hard time budgets."""

    worker_fault_plan: Optional[dict] = None
    """Chaos/test injection: task index -> ``"crash"`` | ``"hang"``,
    applied to the task's first dispatch only."""

    def validate(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if min(self.retry_base_delay, self.retry_max_delay,
               self.retry_jitter) < 0:
            raise ValueError("retry delays and jitter must be >= 0")
        if self.hard_slack < 1.0:
            raise ValueError("hard_slack must be >= 1")
        if self.resume and not self.checkpoint_path:
            raise ValueError("resume requires a checkpoint_path")
        if not 0.0 <= self.audit_rate <= 1.0:
            raise ValueError("audit_rate must be in [0, 1]")
        if self.audit_votes < 3 or self.audit_votes % 2 == 0:
            raise ValueError("audit_votes must be odd and >= 3")
        if not 0.0 < self.verify_target < 1.0:
            raise ValueError("verify_target must be inside (0, 1)")
        if not 0.0 < self.verify_confidence < 1.0:
            raise ValueError("verify_confidence must be inside (0, 1)")
        if self.verify_samples is not None and self.verify_samples <= 0:
            raise ValueError("verify_samples must be positive when set")
        if not 0.0 < self.verify_rows_fraction <= 1.0:
            raise ValueError("verify_rows_fraction must be in (0, 1]")
        if self.verify_min_samples <= 0:
            raise ValueError("verify_min_samples must be positive")
        if self.max_repair_rounds < 0:
            raise ValueError("max_repair_rounds must be non-negative")
        if not 0.0 < self.repair_rows_fraction <= 1.0:
            raise ValueError("repair_rows_fraction must be in (0, 1]")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat interval/timeout must be > 0")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval")
        if self.task_wall_grace < 0:
            raise ValueError("task_wall_grace must be non-negative")
        if self.max_redispatches < 0:
            raise ValueError("max_redispatches must be non-negative")
        if not 0.0 < self.redispatch_budget_factor <= 1.0:
            raise ValueError(
                "redispatch_budget_factor must be in (0, 1]")


@dataclass
class ObsConfig:
    """Knobs of the observability layer (``repro.obs``).

    Enabled by default: the span/counter overhead is a few hundred
    nanoseconds per instrumented site (``benchmarks/bench_obs.py``
    gates it below 5% of learn wall-clock), and a run without
    instrumentation cannot emit a trace, metrics dump or run report.
    """

    enabled: bool = True
    """Collect spans and metrics during :meth:`LogicRegressor.learn`,
    attach them to the :class:`LearnResult`, and give every parallel
    worker a child tracer/registry folded back deterministically."""

    profile: bool = False
    """Arm the cost-model profiler: deterministic kernel counters
    (packed words, popcounts, espresso iterations, scan words, ...)
    plus per-span CPU time.  Off by default — the counters sit inside
    the bit-kernel hot loops, and ``benchmarks/bench_obs.py`` gates the
    armed overhead below the same 5% budget."""

    profile_memory: bool = False
    """Additionally trace per-stage memory high-water marks with
    ``tracemalloc`` (requires ``profile=True`` to surface in the
    profile artifacts; watermarks are outside the byte-identity
    contract)."""

    def validate(self) -> None:
        if self.profile_memory and not self.profile:
            raise ValueError(
                "profile_memory requires profile=True")


@dataclass
class RegressorConfig:
    """All knobs of the five-step pipeline (Fig. 1)."""

    # -- step 1+2: preprocessing -------------------------------------------
    enable_preprocessing: bool = True
    """Master switch for name grouping + template matching (the paper's
    own ablation turns this off)."""

    template_samples: int = 192
    """Random samples used to accept/reject a template hypothesis."""

    propagation_tries: int = 24
    """Random context assignments tried when searching the propagation
    cube of a buried comparator (Sec. IV-B1)."""

    min_bus_width: int = 2
    """Name groups narrower than this are treated as scalars."""

    enable_extended_templates: bool = True
    """Also try the extension families (MUX / bitwise / wiring) of
    Sec. VI's future-work direction when the Table I families fail."""

    try_reversed_buses: bool = True
    """Retry word-level templates with MSB-first bus orientation."""

    enable_output_sharing: bool = True
    """Detect identical / complemented outputs by sampled signature and
    learn each function only once (free size; extension to the paper's
    strictly independent per-output treatment)."""

    # -- step 3: support identification --------------------------------------
    r_support: int = 512
    """Paired random assignments per input for support identification
    (paper: 7200)."""

    sampling_biases: Tuple[float, ...] = (0.5, 0.15, 0.85)
    """Mix of P(bit=1) biases for random assignments; the uneven ratios
    implement the Sec. IV-C observation that skewed patterns reveal more
    of the support."""

    # -- step 4: FBDT construction ---------------------------------------------
    r_node: int = 60
    """Samples per tree node for picking the most significant input
    (paper: 60)."""

    leaf_samples: int = 96
    """Samples used for the constant-leaf test at each node."""

    exhaustive_threshold: int = 12
    """Supports up to this size are conquered by exhaustive enumeration
    (paper: 18; scaled for the Python prototype)."""

    subtree_exhaustive_threshold: int = 7
    """Trick 1 applied *inside* the tree: once a node's remaining
    support fits this budget, its whole subspace is tabulated exactly
    instead of splitting on (0 disables; an extension beyond the paper,
    which only applies exhaustion before tree construction)."""

    leaf_epsilon: float = 0.0
    """Early-stopping tolerance (trick 3): a node whose TruthRatio is
    within epsilon of 0 or 1 becomes a constant leaf."""

    onset_offset_selection: bool = True
    """Trick 2: realize whichever of the onset/offset cover is smaller."""

    levelized: bool = True
    """Explore the FBDT in levelized (BFS) order, per the paper; False
    gives depth-first order for the ablation."""

    max_tree_nodes: int = 4096
    """Hard cap on expanded FBDT nodes per output."""

    max_depth: Optional[int] = None
    """Optional depth cap per output (None = bounded by support size)."""

    frontier_mode: str = "batched"
    """How FBDT frontier nodes are expanded in levelized (BFS) order:
    ``"batched"`` fuses every frontier node's constant-leaf probe,
    subtree tabulation and split-selection sampling into one oracle
    call per level (per-node RNG substreams keep results deterministic
    at any ``--jobs`` value); ``"unbatched"`` keeps the node-at-a-time
    reference path.  Depth-first exploration (``levelized=False``)
    always runs unbatched — there is no level to fuse."""

    kernel_backend: str = "auto"
    """Implementation of the packed bit-parallel logic kernels
    (``repro.logic.bitops``): ``"numpy"``, ``"numba"`` (JIT, needs the
    ``[perf]`` extra; silently falls back to numpy when absent), or
    ``"auto"`` (honours ``$REPRO_KERNEL_BACKEND``, else numpy)."""

    # -- query engine (repro.perf) -----------------------------------------
    jobs: int = 1
    """Worker processes for per-output learning.  1 keeps the paper's
    single-threaded contract; N > 1 learns independent outputs in
    ``concurrent.futures`` worker processes with per-worker oracle
    shards.  Output is deterministic (same seed => bit-identical
    circuit) regardless of worker count as long as neither wall-clock
    deadlines nor the query budget bind (see docs/PERFORMANCE.md)."""

    enable_sample_bank: bool = True
    """Keep every answered (pattern, full output row) pair in a bounded
    cross-output :class:`~repro.perf.bank.SampleBank` and drain it
    before spending new query budget."""

    bank_max_rows: int = 1 << 16
    """Ring capacity of the sample bank, rows (memory is
    ``bank_max_rows * (num_pis + num_pos)`` bytes plus the index)."""

    bank_fresh_fraction: float = 0.25
    """Floor on the freshly sampled share of each bank-assisted probe,
    so stale bank rows can never fully starve a leaf test of new
    evidence."""

    # -- budgets -----------------------------------------------------------------
    time_limit: float = 120.0
    """Wall-clock budget for the whole pipeline, seconds (contest: 2700)."""

    preprocessing_fraction: float = 0.15
    """Share of the budget reserved for steps 1-3."""

    optimize_fraction: float = 0.2
    """Share of the budget reserved for circuit optimization (step 5)."""

    query_budget: Optional[int] = None
    """Optional cap on total oracle queries."""

    # -- step 5: optimization -------------------------------------------------------
    enable_optimization: bool = True
    optimize_iterations: int = 4
    collapse_support: int = 14

    # -- execution layer ----------------------------------------------------------
    robustness: RobustnessConfig = field(default_factory=RobustnessConfig)

    # -- observability (repro.obs) -----------------------------------------------
    observability: ObsConfig = field(default_factory=ObsConfig)

    # -- misc ---------------------------------------------------------------------
    seed: int = 2019

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.r_support <= 0 or self.r_node <= 0:
            raise ValueError("sampling volumes must be positive")
        if not 0.0 <= self.leaf_epsilon < 0.5:
            raise ValueError("leaf_epsilon must be in [0, 0.5)")
        if not self.sampling_biases:
            raise ValueError("need at least one sampling bias")
        for b in self.sampling_biases:
            if not 0.0 < b < 1.0:
                raise ValueError("biases must be strictly inside (0, 1)")
        if self.exhaustive_threshold > 20:
            raise ValueError(
                "exhaustive threshold above 20 is intractable here")
        if self.preprocessing_fraction + self.optimize_fraction >= 1.0:
            raise ValueError("budget fractions leave nothing for the tree")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.frontier_mode not in ("batched", "unbatched"):
            raise ValueError(
                "frontier_mode must be 'batched' or 'unbatched', got "
                f"{self.frontier_mode!r}")
        if self.kernel_backend not in ("auto", "numpy", "numba"):
            raise ValueError(
                "kernel_backend must be 'auto', 'numpy' or 'numba', got "
                f"{self.kernel_backend!r}")
        if self.bank_max_rows <= 0:
            raise ValueError("bank_max_rows must be positive")
        if not 0.0 < self.bank_fresh_fraction <= 1.0:
            raise ValueError("bank_fresh_fraction must be in (0, 1]")
        self.robustness.validate()
        self.observability.validate()


def fast_config(**overrides) -> RegressorConfig:
    """A small-budget configuration for tests and quick demos."""
    base = dict(r_support=96, r_node=24, leaf_samples=48,
                template_samples=64, exhaustive_threshold=10,
                time_limit=20.0, optimize_iterations=2,
                max_tree_nodes=512)
    base.update(overrides)
    return RegressorConfig(**base)
