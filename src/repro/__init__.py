"""repro — circuit learning for logic regression on high-dimensional
Boolean space.

A from-scratch Python reproduction of Chen, Huang, Lee, Jiang (DAC 2020):
the winning entry of the 2019 ICCAD CAD Contest Problem A.  The package
bundles the learner (:class:`LogicRegressor`), the Boolean/circuit/SAT/
synthesis substrates it stands on, synthetic contest-style benchmark
oracles, and a contest-faithful evaluation harness.

Quickstart::

    from repro import LogicRegressor, RegressorConfig
    from repro.oracle import contest_suite
    from repro.eval import contest_test_patterns, accuracy

    case = contest_suite(["case_16"])[0]
    result = LogicRegressor(RegressorConfig(time_limit=30)).learn(case.oracle())
    pats = contest_test_patterns(case.num_pis, total=10000)
    print(result.gate_count, accuracy(result.netlist, case.golden, pats))
"""

from repro.core import LearnResult, LogicRegressor, RegressorConfig
from repro.network import Netlist
from repro.oracle import FunctionOracle, NetlistOracle, Oracle, contest_suite

__version__ = "1.0.0"

__all__ = ["LogicRegressor", "RegressorConfig", "LearnResult", "Netlist",
           "Oracle", "NetlistOracle", "FunctionOracle", "contest_suite",
           "__version__"]
