"""Gate-level Boolean networks of 2-input primitive gates.

This is the contest's target representation (Sec. III): a DAG whose
intermediate nodes carry 2-input primitive gates ("and", "or", "xor" and
their complements), plus free inverters/buffers.  Gate count — the metric of
Table II — counts the 2-input gates only; inverters and buffers are treated
as free wiring, which matches AIG-style size accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


class GateOp(enum.Enum):
    """Primitive node operations."""

    PI = "pi"
    CONST0 = "const0"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"

    @property
    def arity(self) -> int:
        if self in (GateOp.PI, GateOp.CONST0):
            return 0
        if self in (GateOp.BUF, GateOp.NOT):
            return 1
        return 2

    @property
    def counts_as_gate(self) -> bool:
        """True for the 2-input primitives counted by the contest metric."""
        return self.arity == 2


TWO_INPUT_OPS = tuple(op for op in GateOp if op.arity == 2)


@dataclass(frozen=True)
class Gate:
    """One node of the netlist DAG."""

    op: GateOp
    fanins: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.fanins) != self.op.arity:
            raise ValueError(
                f"{self.op.value} expects {self.op.arity} fanins, "
                f"got {len(self.fanins)}")


class Netlist:
    """A named combinational network.

    Nodes are integer ids in insertion (hence topological) order: fanins must
    exist before the gate that uses them, so the node list is always a valid
    evaluation order.
    """

    def __init__(self, name: str = "top"):
        self.name = name
        self.gates: List[Gate] = []
        self.pi_names: List[str] = []
        self._pi_nodes: List[int] = []
        self.po_names: List[str] = []
        self.po_nodes: List[int] = []
        self._name_to_pi: Dict[str, int] = {}

    # -- construction -----------------------------------------------------------

    def add_pi(self, name: str) -> int:
        """Add a primary input; returns its node id."""
        if name in self._name_to_pi:
            raise ValueError(f"duplicate PI name {name!r}")
        node = self._add(Gate(GateOp.PI, ()))
        self.pi_names.append(name)
        self._pi_nodes.append(node)
        self._name_to_pi[name] = node
        return node

    def add_const0(self) -> int:
        return self._add(Gate(GateOp.CONST0, ()))

    def add_gate(self, op: GateOp, *fanins: int) -> int:
        """Add a gate; fanins must be existing node ids."""
        for f in fanins:
            if not 0 <= f < len(self.gates):
                raise ValueError(f"fanin {f} does not exist yet")
        return self._add(Gate(op, tuple(fanins)))

    def _add(self, gate: Gate) -> int:
        self.gates.append(gate)
        return len(self.gates) - 1

    def add_po(self, name: str, node: int) -> None:
        if not 0 <= node < len(self.gates):
            raise ValueError(f"PO driver {node} does not exist")
        self.po_names.append(name)
        self.po_nodes.append(node)

    # convenience gate helpers -------------------------------------------------

    def add_not(self, a: int) -> int:
        return self.add_gate(GateOp.NOT, a)

    def add_and(self, a: int, b: int) -> int:
        return self.add_gate(GateOp.AND, a, b)

    def add_or(self, a: int, b: int) -> int:
        return self.add_gate(GateOp.OR, a, b)

    def add_xor(self, a: int, b: int) -> int:
        return self.add_gate(GateOp.XOR, a, b)

    def add_const1(self) -> int:
        return self.add_not(self.add_const0())

    # -- queries --------------------------------------------------------------

    @property
    def num_pis(self) -> int:
        return len(self.pi_names)

    @property
    def num_pos(self) -> int:
        return len(self.po_names)

    @property
    def pi_nodes(self) -> List[int]:
        return list(self._pi_nodes)

    def pi_index_of_node(self, node: int) -> int:
        return self._pi_nodes.index(node)

    def pi_node(self, name: str) -> int:
        return self._name_to_pi[name]

    def __len__(self) -> int:
        return len(self.gates)

    def gate_count(self) -> int:
        """Contest size metric: number of (reachable) 2-input gates."""
        reachable = self.reachable_from_pos()
        return sum(1 for n in reachable
                   if self.gates[n].op.counts_as_gate)

    def reachable_from_pos(self) -> Set[int]:
        """Nodes in the transitive fanin of any PO."""
        seen: Set[int] = set()
        stack = list(self.po_nodes)
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            stack.extend(self.gates[n].fanins)
        return seen

    def level(self, node: Optional[int] = None) -> int:
        """Logic depth of ``node`` (or max over POs), NOT/BUF free."""
        levels = [0] * len(self.gates)
        for n, gate in enumerate(self.gates):
            if gate.op.arity == 0:
                levels[n] = 0
            else:
                base = max(levels[f] for f in gate.fanins)
                levels[n] = base + (1 if gate.op.counts_as_gate else 0)
        if node is not None:
            return levels[node]
        if not self.po_nodes:
            return 0
        return max(levels[n] for n in self.po_nodes)

    def fanouts(self) -> List[List[int]]:
        out: List[List[int]] = [[] for _ in self.gates]
        for n, gate in enumerate(self.gates):
            for f in gate.fanins:
                out[f].append(n)
        return out

    def cone_of(self, po_index: int) -> "Netlist":
        """Extract the single-output cone feeding PO ``po_index``.

        The extracted netlist keeps *all* PIs (same input universe) so that
        pattern arrays remain compatible, but contains only the cone's gates.
        """
        root = self.po_nodes[po_index]
        keep: Set[int] = set(self._pi_nodes)
        stack = [root]
        while stack:
            n = stack.pop()
            if n in keep:
                continue
            keep.add(n)
            stack.extend(self.gates[n].fanins)
        out = Netlist(f"{self.name}_cone{po_index}")
        remap: Dict[int, int] = {}
        for name in self.pi_names:
            remap[self._name_to_pi[name]] = out.add_pi(name)
        for n in sorted(keep):
            if n in remap:
                continue
            gate = self.gates[n]
            remap[n] = out.add_gate(gate.op,
                                    *(remap[f] for f in gate.fanins))
        out.add_po(self.po_names[po_index], remap[root])
        return out

    def structural_support(self, po_index: int) -> List[str]:
        """PI names in the transitive fanin of the given PO."""
        root = self.po_nodes[po_index]
        seen: Set[int] = set()
        stack = [root]
        pis: Set[int] = set()
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            gate = self.gates[n]
            if gate.op is GateOp.PI:
                pis.add(n)
            stack.extend(gate.fanins)
        return [name for name, node in zip(self.pi_names, self._pi_nodes)
                if node in pis]

    # -- composition -------------------------------------------------------------

    def append_netlist(self, other: "Netlist",
                       input_map: Dict[str, int]) -> Dict[str, int]:
        """Graft ``other`` into self, wiring its PIs to existing nodes.

        ``input_map`` maps each of ``other``'s PI names to a node id in self.
        Returns a map from ``other``'s PO names to new node ids in self.
        """
        remap: Dict[int, int] = {}
        for name, node in zip(other.pi_names, other._pi_nodes):
            if name not in input_map:
                raise ValueError(f"unmapped input {name!r}")
            remap[node] = input_map[name]
        for n, gate in enumerate(other.gates):
            if gate.op is GateOp.PI:
                continue
            remap[n] = self.add_gate(gate.op,
                                     *(remap[f] for f in gate.fanins))
        return {name: remap[node]
                for name, node in zip(other.po_names, other.po_nodes)}

    def cleaned(self) -> "Netlist":
        """Copy with dangling (PO-unreachable) gates removed."""
        keep = self.reachable_from_pos() | set(self._pi_nodes)
        out = Netlist(self.name)
        remap: Dict[int, int] = {}
        for name in self.pi_names:
            remap[self._name_to_pi[name]] = out.add_pi(name)
        for n in sorted(keep):
            if n in remap:
                continue
            gate = self.gates[n]
            remap[n] = out.add_gate(gate.op,
                                    *(remap[f] for f in gate.fanins))
        for name, node in zip(self.po_names, self.po_nodes):
            out.add_po(name, remap[node])
        return out

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}, {self.num_pis} PIs, "
                f"{self.num_pos} POs, {self.gate_count()} gates)")
