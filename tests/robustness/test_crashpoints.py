"""The crash-point exploration harness (ALICE/CrashMonkey style).

The full sweep is the acceptance artifact — every storage
syscall-equivalent step of every scripted workload, crashed or faulted
four ways, with the recovery invariants checked after each — so the
``slow`` test here runs it whole and asserts the issue's floor of 150
distinct injection points.  The fast tests pin the harness mechanics:
fault-free traces enumerate the step universe, a planted recovery bug
is actually caught, and the CLI writes a machine-readable report.
"""

import json

import pytest

from repro.robustness.crashpoints import (KINDS, Workload, explore,
                                          main, run_harness,
                                          trace_workload, workloads)


class TestHarnessMechanics:
    def test_fault_free_trace_enumerates_steps(self):
        available = workloads()
        trace = trace_workload(available["telemetry"], "strict")
        steps = [step for _, step, _ in trace]
        assert steps == ["append", "fsync-append"] * 4
        assert trace_workload(available["telemetry"], "lax") \
            == [entry for entry in trace if entry[1] == "append"]

    def test_single_workload_sweep_is_clean(self):
        report = run_harness(["telemetry"], kinds=("crash",
                                                   "crash-torn"))
        assert report["passed"]
        stats = report["workloads"]["telemetry"]
        assert stats["step_points"] == 8
        # crash sweeps all 8 points, crash-torn only the 4 appends.
        assert stats["explorations"] == 12
        outcomes = {r["outcome"] for r in report["results"]}
        assert outcomes == {"crashed"}

    def test_transient_faults_surface_as_oserror(self):
        report = run_harness(["telemetry"], kinds=("enospc", "eio"))
        assert report["passed"]
        outcomes = {r["outcome"] for r in report["results"]}
        assert outcomes == {"oserror:ENOSPC", "oserror:EIO"}

    def test_planted_recovery_bug_is_caught(self, tmp_path):
        # A workload whose "recovery" loses the record it wrote: the
        # harness must flag it, proving the invariant checks have
        # teeth and the green full sweep means something.
        from repro.robustness.storage import get_storage

        def run(root):
            get_storage().atomic_write_json(root + "/data.json",
                                            {"v": 1}, writer="t")

        def verify(root):
            from repro.robustness.storage import read_json_checked
            data = read_json_checked(root + "/data.json")
            if data != {"v": 1}:
                return [f"payload lost: {data}"]
            return []

        lossy = Workload("lossy", run, verify)
        trace = trace_workload(lossy, "lax")
        result = explore(lossy, "crash", 0, trace[0], "lax")
        assert result.outcome == "crashed"
        assert result.violations  # nothing durable before the crash

    def test_rejects_unknown_workloads_and_kinds(self):
        with pytest.raises(ValueError):
            run_harness(["no-such-workload"])
        with pytest.raises(ValueError):
            run_harness(["telemetry"], kinds=("meteor",))

    def test_cli_writes_report(self, tmp_path, capsys):
        out = str(tmp_path / "crashpoints.json")
        assert main(["--workloads", "telemetry", "--kinds", "crash",
                     "--out", out]) == 0
        report = json.load(open(out))
        assert report["passed"]
        assert report["workloads"]["telemetry"]["explorations"] == 8
        assert "telemetry" in capsys.readouterr().out


@pytest.mark.slow
class TestFullSweep:
    def test_acceptance_floor_and_zero_violations(self):
        report = run_harness(kinds=KINDS, durability="strict")
        assert report["passed"], report["violations"][:5]
        # The issue's acceptance floor: >= 150 distinct crash/fault
        # injection points, every one recovering cleanly.
        assert report["explorations"] >= 150
        assert report["step_points"] >= 100
        # Every workload contributed, including the spool journal and
        # the checkpoint (the two recovery-critical artifacts).
        assert set(report["workloads"]) >= {"spool", "checkpoint",
                                            "cache", "telemetry",
                                            "fleet"}
        assert all(stats["violations"] == 0
                   for stats in report["workloads"].values())
