"""Unit tests for the AIG package."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.aig import FALSE, TRUE, Aig, lit, lit_compl, lit_node, lit_not
from repro.network.builder import comparator, ripple_add
from repro.network.netlist import GateOp, Netlist
from repro.network.simulate import simulate
from repro.sat import are_equivalent


class TestLiterals:
    def test_encoding(self):
        assert lit(3) == 6
        assert lit(3, True) == 7
        assert lit_node(7) == 3
        assert lit_compl(7) == 1
        assert lit_not(6) == 7


class TestConstruction:
    def test_constant_folding(self):
        aig = Aig(2)
        a = aig.pi_lit(0)
        assert aig.and_(a, FALSE) == FALSE
        assert aig.and_(a, TRUE) == a
        assert aig.and_(a, a) == a
        assert aig.and_(a, lit_not(a)) == FALSE

    def test_structural_hashing(self):
        aig = Aig(2)
        a, b = aig.pi_lit(0), aig.pi_lit(1)
        x = aig.and_(a, b)
        y = aig.and_(b, a)
        assert x == y
        assert aig.num_ands == 1

    def test_or_xor_mux(self):
        aig = Aig(3)
        a, b, s = aig.pi_lit(0), aig.pi_lit(1), aig.pi_lit(2)
        aig.add_po(aig.or_(a, b), "or")
        aig.add_po(aig.xor_(a, b), "xor")
        aig.add_po(aig.mux_(s, a, b), "mux")
        pats = np.array([[p >> 0 & 1, p >> 1 & 1, p >> 2 & 1]
                         for p in range(8)], dtype=np.uint8)
        out = aig.simulate(pats)
        for row, (o, x, m) in zip(pats, out):
            assert o == (row[0] | row[1])
            assert x == (row[0] ^ row[1])
            assert m == (row[0] if row[2] else row[1])

    def test_and_or_many(self):
        aig = Aig(5)
        lits = [aig.pi_lit(k) for k in range(5)]
        aig.add_po(aig.and_many(lits), "all")
        aig.add_po(aig.or_many(lits), "any")
        aig.add_po(aig.and_many([]), "true")
        pats = np.random.default_rng(0).integers(
            0, 2, (64, 5)).astype(np.uint8)
        out = aig.simulate(pats)
        assert (out[:, 0] == pats.all(axis=1)).all()
        assert (out[:, 1] == pats.any(axis=1)).all()
        assert (out[:, 2] == 1).all()

    def test_pi_lit_range_checked(self):
        with pytest.raises(ValueError):
            Aig(2).pi_lit(2)

    def test_fanins_of_pi_rejected(self):
        with pytest.raises(ValueError):
            Aig(2).fanins(1)


class TestMetrics:
    def test_size_counts_reachable_only(self):
        aig = Aig(3)
        a, b, c = (aig.pi_lit(k) for k in range(3))
        x = aig.and_(a, b)
        aig.and_(b, c)  # dangling
        aig.add_po(x, "o")
        assert aig.num_ands == 2
        assert aig.size() == 1

    def test_depth(self):
        aig = Aig(4)
        lits = [aig.pi_lit(k) for k in range(4)]
        aig.add_po(aig.and_many(lits), "o")
        assert aig.depth() == 2

    def test_ref_counts(self):
        aig = Aig(2)
        a, b = aig.pi_lit(0), aig.pi_lit(1)
        x = aig.and_(a, b)
        aig.add_po(x, "o1")
        aig.add_po(x, "o2")
        refs = aig.ref_counts()
        assert refs[lit_node(x)] == 2


class TestConversion:
    def _round_trip(self, net):
        aig = Aig.from_netlist(net)
        back = aig.to_netlist()
        assert are_equivalent(net, back) is True
        return aig, back

    def test_all_gate_ops(self):
        net = Netlist("ops")
        a = net.add_pi("a")
        b = net.add_pi("b")
        for op in (GateOp.AND, GateOp.OR, GateOp.XOR, GateOp.NAND,
                   GateOp.NOR, GateOp.XNOR):
            net.add_po(op.value, net.add_gate(op, a, b))
        net.add_po("n", net.add_not(a))
        net.add_po("buf", net.add_gate(GateOp.BUF, b))
        net.add_po("z", net.add_const0())
        self._round_trip(net)

    def test_xor_re_extraction_restores_gate_count(self):
        net = Netlist("x")
        a = net.add_pi("a")
        b = net.add_pi("b")
        net.add_po("x", net.add_xor(a, b))
        aig, back = self._round_trip(net)
        assert aig.size() == 3  # xor costs 3 ANDs
        assert back.gate_count() == 1  # but maps back to one 2-input gate

    def test_shared_xor_product_not_absorbed(self):
        # If an XOR's internal product also feeds other logic, the
        # extraction must keep it as an AND.
        aig = Aig(3, pi_names=["a", "b", "c"])
        a, b, c = (aig.pi_lit(k) for k in range(3))
        x = aig.xor_(a, b)
        # Reuse one product node of the xor structure:
        prod = aig.and_(a, lit_not(b))
        aig.add_po(x, "x")
        aig.add_po(aig.and_(prod, c), "y")
        net = aig.to_netlist()
        back = Aig.from_netlist(net)
        assert are_equivalent(aig.to_netlist(extract_xors=False),
                              net) is True

    def test_adder_round_trip(self):
        net = Netlist("add")
        a = [net.add_pi(f"a{i}") for i in range(5)]
        b = [net.add_pi(f"b{i}") for i in range(5)]
        for i, s in enumerate(ripple_add(net, a, b, 5)):
            net.add_po(f"s{i}", s)
        self._round_trip(net)

    def test_comparator_round_trip(self):
        net = Netlist("cmp")
        a = [net.add_pi(f"a{i}") for i in range(4)]
        b = [net.add_pi(f"b{i}") for i in range(4)]
        net.add_po("lt", comparator(net, "<=", a, b))
        self._round_trip(net)

    def test_simulation_matches_netlist(self):
        net = Netlist("mix")
        a = [net.add_pi(f"a{i}") for i in range(6)]
        x = net.add_xor(a[0], a[3])
        y = net.add_gate(GateOp.NOR, x, a[5])
        net.add_po("o", y)
        aig = Aig.from_netlist(net)
        pats = np.random.default_rng(1).integers(
            0, 2, (300, 6)).astype(np.uint8)
        assert (aig.simulate(pats) == simulate(net, pats)).all()


@given(seed=st.integers(0, 2000))
@settings(max_examples=30, deadline=None)
def test_random_netlist_round_trip(seed):
    rng = np.random.default_rng(seed)
    net = Netlist("r")
    nodes = [net.add_pi(f"i{k}") for k in range(5)]
    ops = [GateOp.AND, GateOp.OR, GateOp.XOR, GateOp.NAND, GateOp.NOR,
           GateOp.XNOR]
    for _ in range(12):
        a, b = rng.integers(0, len(nodes), 2)
        nodes.append(net.add_gate(ops[rng.integers(len(ops))],
                                  nodes[a], nodes[b]))
    net.add_po("o", nodes[-1])
    aig = Aig.from_netlist(net)
    back = aig.to_netlist()
    pats = rng.integers(0, 2, (200, 5)).astype(np.uint8)
    assert (simulate(net, pats) == simulate(back, pats)).all()
    assert (aig.simulate(pats) == simulate(net, pats)).all()
