"""Miter-based combinational equivalence checking.

Builds the standard miter — shared inputs, pairwise XOR of outputs, OR of
the XORs — and asks the CDCL solver for a distinguishing input.  This is
the exactness backstop behind fraig and behind the test-suite's
"optimization preserved the function" checks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.aig.aig import Aig
from repro.network.netlist import Netlist
from repro.sat.cnf import Cnf, tseitin_aig
from repro.sat.solver import Solver, SolveResult

Circuit = Union[Aig, Netlist]


def _as_aig(circuit: Circuit) -> Aig:
    if isinstance(circuit, Aig):
        return circuit
    return Aig.from_netlist(circuit)


def find_counterexample(left: Circuit, right: Circuit,
                        max_conflicts: Optional[int] = None
                        ) -> Tuple[SolveResult, Optional[List[int]]]:
    """Search for an input on which the circuits disagree.

    Returns ``(UNSAT, None)`` when provably equivalent, ``(SAT, pattern)``
    with a distinguishing 0/1 input vector, or ``(UNKNOWN, None)`` if the
    conflict budget ran out.
    """
    a, b = _as_aig(left), _as_aig(right)
    if a.num_pis != b.num_pis:
        raise ValueError("circuits have different input counts")
    if len(a.po_lits) != len(b.po_lits):
        raise ValueError("circuits have different output counts")
    cnf = Cnf()
    cnf, pi_vars, pos_a = tseitin_aig(a, cnf)
    cnf, _, pos_b = tseitin_aig(b, cnf, pi_vars=pi_vars)
    diff_vars = []
    for la, lb in zip(pos_a, pos_b):
        d = cnf.new_var()
        # d <-> (la xor lb)
        cnf.add(-d, la, lb)
        cnf.add(-d, -la, -lb)
        cnf.add(d, -la, lb)
        cnf.add(d, la, -lb)
        diff_vars.append(d)
    cnf.add(*diff_vars)  # some output differs

    solver = Solver()
    if not solver.add_clauses(cnf.clauses):
        return SolveResult.UNSAT, None
    result = solver.solve(max_conflicts=max_conflicts)
    if result is not SolveResult.SAT:
        return result, None
    pattern = [1 if solver.model_value(v) else 0 for v in pi_vars]
    return result, pattern


def are_equivalent(left: Circuit, right: Circuit,
                   max_conflicts: Optional[int] = None) -> Optional[bool]:
    """True/False when decided; None if the conflict budget ran out."""
    result, _ = find_counterexample(left, right, max_conflicts=max_conflicts)
    if result is SolveResult.UNSAT:
        return True
    if result is SolveResult.SAT:
        return False
    return None
