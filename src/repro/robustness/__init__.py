"""Fault-tolerant execution layer.

The contest setting is adversarial by construction: one wall-clock
deadline, a black-box IO-generator that may hiccup, and a score of zero
for any run that dies without emitting a netlist.  This package holds the
machinery that keeps a run alive:

- :mod:`repro.robustness.faults` — a seeded fault-injecting oracle
  wrapper for testing the learner under adversity;
- :mod:`repro.robustness.retry` — exponential-backoff retries with a
  query-result cache so retried assignments never double-bill the budget;
- :mod:`repro.robustness.deadline` — the hierarchical deadline manager
  that splits the global budget into per-step / per-output sub-deadlines;
- :mod:`repro.robustness.checkpoint` — per-output checkpointing so a
  killed run can resume without re-learning completed outputs.

See ``docs/ROBUSTNESS.md`` for the full design.
"""

from repro.robustness.checkpoint import CheckpointError, CheckpointStore
from repro.robustness.deadline import Deadline, DeadlineManager
from repro.robustness.faults import FaultModel, FaultyOracle
from repro.robustness.retry import RetryExhausted, RetryingOracle, RetryPolicy

__all__ = ["CheckpointError", "CheckpointStore", "Deadline",
           "DeadlineManager", "FaultModel", "FaultyOracle",
           "RetryExhausted", "RetryingOracle", "RetryPolicy"]
