"""SAT-based redundancy removal (don't-care-aware simplification).

The paper's postprocessing cites don't-care-based optimization [19];
this pass captures its core move at prototype scale: a node may be
replaced by one of its own fanins whenever the difference is never
observable at any primary output (an observability don't-care).  fraig
cannot find these — the node and its fanin are *not* equivalent as
functions; only the surrounding logic masks the difference.

Candidates are screened by random simulation of the primary outputs and
confirmed by a bounded SAT miter, then applied by substitution rebuild.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.aig.aig import Aig, lit_compl, lit_node, lit_not
from repro.sat.equivalence import find_counterexample
from repro.sat.solver import SolveResult
from repro.synth.rebuild import copy_pos, identity_map, map_lit


def remove_redundancies(aig: Aig,
                        rng: Optional[np.random.Generator] = None,
                        sim_words: int = 16,
                        max_conflicts: int = 2000,
                        max_rounds: int = 4,
                        max_checks_per_round: int = 64) -> Aig:
    """Iteratively substitute nodes by fanins when outputs cannot tell."""
    if rng is None:
        rng = np.random.default_rng(2019)
    current = aig
    for _ in range(max_rounds):
        replaced = _one_round(current, rng, sim_words, max_conflicts,
                              max_checks_per_round)
        if replaced is None:
            return current
        current = replaced
    return current


def _one_round(aig: Aig, rng: np.random.Generator, sim_words: int,
               max_conflicts: int, max_checks: int) -> Optional[Aig]:
    """Find and apply one batch of confirmed substitutions, or None."""
    if aig.num_pis == 0 or not aig.po_lits:
        return None
    pi_words = rng.integers(0, 2 ** 64, size=(aig.num_pis, sim_words),
                            dtype=np.uint64)
    values = aig.simulate_words(pi_words)
    po_sig = _po_signature(aig, values)
    reachable = sorted(aig.reachable())
    checks = 0
    # Try high nodes first: killing late logic frees more fanin cone.
    for n in reversed(reachable):
        f0, f1 = aig.fanins(n)
        for keep in (f1, f0):
            if checks >= max_checks:
                return None
            candidate_sub = {n: keep}
            sig = _po_signature_with_sub(aig, pi_words, candidate_sub)
            if not _sig_equal(po_sig, sig):
                continue
            checks += 1
            substituted = _substitute(aig, n, keep)
            verdict, _ = find_counterexample(
                aig, substituted, max_conflicts=max_conflicts)
            if verdict is SolveResult.UNSAT:
                return substituted
    return None


def _po_signature(aig: Aig, values) -> List[bytes]:
    out = []
    for po in aig.po_lits:
        v = values[lit_node(po)]
        out.append((~v if lit_compl(po) else v).tobytes())
    return out


def _po_signature_with_sub(aig: Aig, pi_words: np.ndarray,
                           sub: Dict[int, int]) -> List[bytes]:
    """Output signatures of the AIG with node->fanin-literal substitutions.

    Cheap screening only: recomputes node values with the substitution
    spliced in at simulation level.
    """
    num_words = pi_words.shape[1]
    values: List[np.ndarray] = [None] * aig.num_nodes  # type: ignore
    values[0] = np.zeros(num_words, dtype=np.uint64)
    for k in range(aig.num_pis):
        values[k + 1] = pi_words[k]

    def lit_words(literal: int) -> np.ndarray:
        v = values[lit_node(literal)]
        return ~v if lit_compl(literal) else v

    for n in range(aig.num_pis + 1, aig.num_nodes):
        if n in sub:
            values[n] = lit_words(sub[n])
            continue
        f0, f1 = aig.fanins(n)
        values[n] = lit_words(f0) & lit_words(f1)
    out = []
    for po in aig.po_lits:
        out.append(lit_words(po).tobytes())
    return out


def _sig_equal(a: List[bytes], b: List[bytes]) -> bool:
    return a == b


def _substitute(aig: Aig, node: int, replacement_lit: int) -> Aig:
    """Rebuild with ``node`` replaced by ``replacement_lit``."""
    new = Aig(pi_names=list(aig.pi_names))
    lit_map = identity_map(aig, new)
    for n in sorted(aig.reachable()):
        if n == node:
            lit_map[n] = map_lit(lit_map, replacement_lit)
            continue
        f0, f1 = aig.fanins(n)
        lit_map[n] = new.and_(map_lit(lit_map, f0), map_lit(lit_map, f1))
    copy_pos(aig, new, lit_map)
    return new
