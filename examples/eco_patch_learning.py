#!/usr/bin/env python
"""ECO scenario: learning patch logic and exporting it for integration.

Engineering-change-order flows need the *logic difference* between a
spec and an implementation as a small patch circuit.  Here the black box
plays that patch: many outputs, each depending on a small input subset.
The learner identifies each output's support, conquers the small functions
exhaustively (Sec. IV-D trick 1), optimizes, and writes BLIF + Verilog
for downstream tools.

Run:  python examples/eco_patch_learning.py
"""

import io

import numpy as np

from repro import LogicRegressor, RegressorConfig
from repro.eval import accuracy, contest_test_patterns
from repro.network.blif import read_blif, write_blif
from repro.network.verilog import write_verilog
from repro.oracle.eco import build_eco_netlist
from repro.oracle.netlist_oracle import NetlistOracle
from repro.sat import are_equivalent


def main() -> None:
    golden = build_eco_netlist(num_pis=48, num_pos=10, seed=7,
                               support_low=3, support_high=9,
                               gates_per_output=12)
    oracle = NetlistOracle(golden)
    print(f"patch under learning: {golden.num_pis} inputs, "
          f"{golden.num_pos} outputs, hidden size "
          f"{golden.gate_count()} gates")

    config = RegressorConfig(time_limit=60.0, r_support=512)
    result = LogicRegressor(config).learn(oracle)

    patterns = contest_test_patterns(golden.num_pis, total=30000)
    acc = accuracy(result.netlist, golden, patterns)
    print(f"\nlearned: {result.gate_count} gates, "
          f"accuracy {acc * 100:.4f}%, {result.elapsed:.1f}s")
    print("per-output supports found:")
    for report in result.reports:
        print(f"  {report.po_name:8s} |S'|={report.support_size:2d} "
              f"via {report.method}")

    # Export for integration and check the exports are faithful.
    blif_buf = io.StringIO()
    write_blif(result.netlist, blif_buf)
    blif_text = blif_buf.getvalue()
    reread = read_blif(io.StringIO(blif_text))
    assert are_equivalent(result.netlist, reread) is True
    print(f"\nBLIF export: {len(blif_text.splitlines())} lines "
          "(round-trip verified equivalent by SAT)")

    verilog_buf = io.StringIO()
    write_verilog(result.netlist, verilog_buf)
    print(f"Verilog export: "
          f"{len(verilog_buf.getvalue().splitlines())} lines")
    print("\nfirst Verilog lines:")
    for line in verilog_buf.getvalue().splitlines()[:8]:
        print("  " + line)


if __name__ == "__main__":
    main()
