"""Declarative SLO evaluation over fleet status snapshots.

An :class:`SloPolicy` is a list of :class:`SloRule`\\ s, each naming a
signal extracted from a fleet status snapshot (see
:mod:`repro.obs.fleet`), a comparison, and two thresholds: crossing
``degraded`` flips the rule amber, crossing ``breached`` flips it red.
The :class:`SloEvaluator` is stateful — it re-evaluates the policy on
every snapshot and reports only *transitions*, so the scheduler can
append one structured record to its event log when health actually
changes instead of spamming a record per tick.

Signals are tier-scoped where that makes sense (queue latency, budget
burn) and fleet-wide otherwise (verify failures, retry rate).  A rule
whose signal has no data yet (e.g. p95 queue latency before any job
ran in that tier) evaluates to ``healthy`` — absence of traffic is not
an incident.

Policies load from JSON (``repro serve --slo-config policy.json``);
the default policy covers the four scheduling signals the roadmap
cares about plus ``storage_pressure`` (disk headroom feeding the
brownout in :class:`repro.service.telemetry.FleetTelemetry`), all with
deliberately loose thresholds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

HEALTHY = "healthy"
DEGRADED = "degraded"
BREACHED = "breached"

_SEVERITY = {HEALTHY: 0, DEGRADED: 1, BREACHED: 2}

KINDS = ("queue_latency_p95", "verify_failure_rate", "retry_rate",
         "budget_burn", "storage_pressure")
"""Supported rule kinds, each mapping to a snapshot signal."""


@dataclass(frozen=True)
class SloRule:
    """One monitored signal with degraded/breached thresholds.

    ``tier`` scopes tier-aware kinds (``queue_latency_p95``,
    ``budget_burn``) to one scheduling tier; ``None`` means fleet-wide.
    Thresholds are upper bounds: signal > ``degraded`` is amber,
    signal > ``breached`` is red, and ``breached`` must not be below
    ``degraded``.
    """

    name: str
    kind: str
    degraded: float
    breached: float
    tier: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if self.breached < self.degraded:
            raise ValueError(
                f"rule {self.name!r}: breached threshold "
                f"{self.breached} below degraded {self.degraded}")

    def signal(self, snapshot: Dict[str, Any]) -> Optional[float]:
        """Extract this rule's signal from a fleet snapshot.

        Returns ``None`` when the snapshot has no data for the signal
        yet (treated as healthy by the evaluator).
        """
        jobs = snapshot.get("jobs", {})
        if self.kind == "queue_latency_p95":
            tiers = snapshot.get("tiers", {})
            scoped = [tiers[self.tier]] if self.tier in tiers \
                else (list(tiers.values()) if self.tier is None else [])
            best: Optional[float] = None
            for entry in scoped:
                p95 = (entry.get("queue_latency") or {}).get("p95")
                if p95 is not None and (best is None or p95 > best):
                    best = p95
            return best
        if self.kind == "verify_failure_rate":
            checked = snapshot.get("verification", {}).get("checked", 0)
            failed = snapshot.get("verification", {}).get("failed", 0)
            if not checked:
                return None
            return failed / checked
        if self.kind == "retry_rate":
            dispatched = jobs.get("dispatched", 0)
            retries = jobs.get("retries", 0)
            if not dispatched:
                return None
            return retries / dispatched
        if self.kind == "budget_burn":
            tiers = snapshot.get("tiers", {})
            scoped = [tiers[self.tier]] if self.tier in tiers \
                else (list(tiers.values()) if self.tier is None else [])
            best = None
            for entry in scoped:
                burn = entry.get("budget_burn")
                if burn is not None and (best is None or burn > best):
                    best = burn
            return best
        if self.kind == "storage_pressure":
            # Used-space fraction of the spool's filesystem (elevated
            # to >= 0.99 when the storage layer has seen ENOSPC); a
            # snapshot without a storage block simply has no data yet.
            pressure = (snapshot.get("storage") or {}).get("pressure")
            return None if pressure is None else float(pressure)
        raise AssertionError(self.kind)  # pragma: no cover

    def evaluate(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """``{rule, kind, tier, status, signal, ...thresholds}``."""
        value = self.signal(snapshot)
        if value is None:
            status = HEALTHY
        elif value > self.breached:
            status = BREACHED
        elif value > self.degraded:
            status = DEGRADED
        else:
            status = HEALTHY
        return {"rule": self.name, "kind": self.kind,
                "tier": self.tier, "status": status,
                "signal": None if value is None else round(value, 9),
                "degraded_above": self.degraded,
                "breached_above": self.breached}


@dataclass
class SloPolicy:
    """A named bundle of rules evaluated together."""

    name: str = "default"
    rules: List[SloRule] = field(default_factory=list)

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "SloPolicy":
        rules = [SloRule(name=r["name"], kind=r["kind"],
                         degraded=float(r["degraded"]),
                         breached=float(r["breached"]),
                         tier=r.get("tier"))
                 for r in payload.get("rules", [])]
        return SloPolicy(name=payload.get("name", "default"),
                         rules=rules)

    @staticmethod
    def load(path: str) -> "SloPolicy":
        with open(path) as handle:
            return SloPolicy.from_dict(json.load(handle))

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name,
                "rules": [{"name": r.name, "kind": r.kind,
                           "degraded": r.degraded,
                           "breached": r.breached, "tier": r.tier}
                          for r in self.rules]}


def default_policy() -> SloPolicy:
    """Loose service-wide defaults; override via ``--slo-config``."""
    return SloPolicy(name="default", rules=[
        SloRule("queue-p95", "queue_latency_p95",
                degraded=30.0, breached=120.0),
        SloRule("verify-failures", "verify_failure_rate",
                degraded=0.01, breached=0.05),
        SloRule("retry-rate", "retry_rate",
                degraded=0.25, breached=0.5),
        SloRule("budget-burn", "budget_burn",
                degraded=0.8, breached=1.0),
        SloRule("storage", "storage_pressure",
                degraded=0.90, breached=0.98),
    ])


class SloEvaluator:
    """Stateful policy evaluation reporting status *transitions*."""

    def __init__(self, policy: Optional[SloPolicy] = None):
        self.policy = policy if policy is not None else default_policy()
        self._last: Dict[str, str] = {}

    @property
    def statuses(self) -> Dict[str, str]:
        """Last known status per rule name."""
        return dict(self._last)

    def overall(self) -> str:
        """Worst current status across all rules."""
        worst = HEALTHY
        for status in self._last.values():
            if _SEVERITY[status] > _SEVERITY[worst]:
                worst = status
        return worst

    def evaluate(self, snapshot: Dict[str, Any]
                 ) -> List[Dict[str, Any]]:
        """Evaluate every rule; return full per-rule records."""
        return [rule.evaluate(snapshot) for rule in self.policy.rules]

    def transitions(self, snapshot: Dict[str, Any]
                    ) -> List[Dict[str, Any]]:
        """Records for rules whose status changed since the last call.

        The very first evaluation reports only rules that are *not*
        healthy, so a freshly started fleet stays quiet.
        """
        out: List[Dict[str, Any]] = []
        for record in self.evaluate(snapshot):
            name = record["rule"]
            previous = self._last.get(name)
            self._last[name] = record["status"]
            if previous is None:
                if record["status"] != HEALTHY:
                    record = dict(record, previous=HEALTHY)
                    out.append(record)
                continue
            if record["status"] != previous:
                record = dict(record, previous=previous)
                out.append(record)
        return out
