"""The cross-output sample bank: never pay twice for the same answer.

Every oracle answer is a *full* output assignment, but the per-output
learner historically used one column and threw the rest away.  The bank
keeps every answered ``(pattern, full output row)`` pair in a
memory-bounded ring so later consumers — support identification for an
output learned after its siblings, TruthRatio probes, constant-leaf
detection, FBDT cube filtering — can drain matching rows before spending
new query budget ("Sampling and Learning for Boolean Function" argues
sample reuse across sub-problems is the main lever on query complexity).

Two access paths:

- **exact-row reuse** — :class:`BankedOracle` wraps any oracle, serves
  previously answered assignments from the bank and forwards only the
  misses (skipped for very large batches, where the per-row hashing would
  cost more than it saves);
- **subspace drains** — :meth:`SampleBank.take` returns stored rows
  satisfying a constraining cube, which is what the FBDT's leaf probes
  want.

Determinism: bank contents are a pure function of the query sequence, so
sequential runs are reproducible.  For parallel per-output learning the
regressor freezes the bank after preprocessing and gives each output a
private :meth:`fork` — reads then depend only on the (deterministic)
preprocessing traffic plus the output's own queries, never on sibling
outputs racing in other workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.logic import bitops
from repro.logic.cube import Cube
from repro.obs import context as obs
from repro.oracle.base import Oracle


@dataclass
class BankStats:
    """Per-bank traffic counters (surfaced in the CLI report)."""

    hits: int = 0
    """Rows served from the bank instead of the oracle."""

    misses: int = 0
    """Rows that had to be queried because the bank could not supply
    them (exact-row misses plus the fresh remainder of subspace
    drains)."""

    rows_recorded: int = 0
    """Distinct rows ever written into the ring."""

    rows_evicted: int = 0
    """Rows overwritten by the FIFO ring after it filled up."""

    take_calls: int = 0
    """Subspace drains served (:meth:`SampleBank.take`)."""

    rows_invalidated: int = 0
    """Rows dropped by corruption auditing (:meth:`SampleBank.invalidate`)."""

    def merge(self, other: "BankStats") -> None:
        """Fold a child bank's counters into this one (fork → parent)."""
        self.hits += other.hits
        self.misses += other.misses
        self.rows_recorded += other.rows_recorded
        self.rows_evicted += other.rows_evicted
        self.take_calls += other.take_calls
        self.rows_invalidated += other.rows_invalidated


class SampleBank:
    """A memory-bounded FIFO store of answered ``(pattern, outputs)`` rows.

    Rows live in fixed pre-allocated arrays addressed as a ring; a dict
    from pattern bytes to slot gives O(1) exact lookups and keeps the
    store duplicate-free.  ``max_rows`` bounds memory at
    ``max_rows * (num_pis + num_pos)`` bytes plus the index.
    """

    def __init__(self, num_pis: int, num_pos: int,
                 max_rows: int = 1 << 16):
        if max_rows <= 0:
            raise ValueError("max_rows must be positive")
        self.num_pis = num_pis
        self.num_pos = num_pos
        self.max_rows = max_rows
        self._pat = np.zeros((max_rows, num_pis), dtype=np.uint8)
        # Packed mirror of _pat: variable-major uint64 words (bit s of
        # word s>>6 is slot s), kept in sync by record() so subspace
        # drains match cubes in O(literals * max_rows / 64) word ops
        # instead of a column comparison per literal per stored row.
        self._pat_words = np.zeros(
            (num_pis, bitops.words_for(max_rows)), dtype=np.uint64)
        self._out = np.zeros((max_rows, num_pos), dtype=np.uint8)
        self._keys: list = [None] * max_rows
        self._index: Dict[bytes, int] = {}
        self._valid = np.zeros(max_rows, dtype=bool)
        self._size = 0
        self._write = 0
        self._frozen = False
        self._ever_invalidated = False
        self.stats = BankStats()

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def frozen(self) -> bool:
        return self._frozen

    def nbytes(self) -> int:
        """Bytes currently occupied by stored rows."""
        return self._size * (self.num_pis + self.num_pos)

    def export_rows(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Snapshot every valid ``(pattern, outputs)`` row, or ``None``
        when empty — what the cross-job cache persists after a run."""
        if self._size == 0:
            return None
        idx = np.flatnonzero(self._valid)
        return self._pat[idx].copy(), self._out[idx].copy()

    # -- lifecycle -----------------------------------------------------------

    def freeze(self) -> None:
        """Make the bank read-only; ``record`` becomes a no-op."""
        self._frozen = True

    def fork(self) -> "SampleBank":
        """A writable private copy seeded with this bank's rows.

        Fork stats start at zero so per-output reuse is attributable;
        fold them back with ``parent.stats.merge(child.stats)``.
        """
        child = SampleBank(self.num_pis, self.num_pos,
                           max_rows=self.max_rows)
        child._pat = self._pat.copy()
        child._pat_words = self._pat_words.copy()
        child._out = self._out.copy()
        child._keys = list(self._keys)
        child._index = dict(self._index)
        child._valid = self._valid.copy()
        child._size = self._size
        child._write = self._write
        child._ever_invalidated = self._ever_invalidated
        return child

    # -- writes --------------------------------------------------------------

    def record(self, patterns: np.ndarray, outputs: np.ndarray) -> None:
        """Store answered rows (duplicates are skipped, oldest evicted).

        Batches larger than the ring only keep their tail — the head
        would be immediately evicted anyway.
        """
        if self._frozen:
            return
        evicted_before = self.stats.rows_evicted
        n = patterns.shape[0]
        if n > self.max_rows:
            patterns = patterns[n - self.max_rows:]
            outputs = outputs[n - self.max_rows:]
            n = self.max_rows
        for row in range(n):
            key = patterns[row].tobytes()
            if key in self._index:
                continue
            slot = self._write
            old = self._keys[slot]
            if old is not None:
                del self._index[old]
                self.stats.rows_evicted += 1
            else:
                self._size += 1
            self._pat[slot] = patterns[row]
            word, bit = slot >> 6, np.uint64(1 << (slot & 63))
            self._pat_words[:, word] &= ~bit
            self._pat_words[patterns[row] != 0, word] |= bit
            self._out[slot] = outputs[row]
            self._keys[slot] = key
            self._index[key] = slot
            self._valid[slot] = True
            self._write = (slot + 1) % self.max_rows
            self.stats.rows_recorded += 1
        obs.count("bank.rows_evicted",
                  self.stats.rows_evicted - evicted_before)

    def invalidate(self, patterns: np.ndarray) -> int:
        """Drop any stored rows matching ``patterns``; return the count.

        This is corruption recovery: the auditing layer calls it when a
        majority vote proves a delivered answer was poisoned, so the
        stale row can never be replayed into a later split or probe.
        Invalidation works even on a frozen bank — correctness always
        outranks the read-only fan-out snapshot.  The slot becomes a
        tombstone (re-usable by ``record``) rather than being compacted,
        which keeps the ring pointers untouched.
        """
        removed = 0
        for row in range(patterns.shape[0]):
            slot = self._index.pop(patterns[row].tobytes(), None)
            if slot is None:
                continue
            self._keys[slot] = None
            self._valid[slot] = False
            self._size -= 1
            removed += 1
        if removed:
            self._ever_invalidated = True
            self.stats.rows_invalidated += removed
            obs.count("bank.rows_invalidated", removed)
        return removed

    # -- reads ---------------------------------------------------------------

    def lookup(self, patterns: np.ndarray
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact-row lookup: ``(hit mask, outputs)``.

        Rows whose mask entry is False carry unspecified output values.
        Does not touch the stats — the caller decides what counts as
        traffic.
        """
        n = patterns.shape[0]
        mask = np.zeros(n, dtype=bool)
        out = np.empty((n, self.num_pos), dtype=np.uint8)
        index = self._index
        for row in range(n):
            slot = index.get(patterns[row].tobytes())
            if slot is not None:
                mask[row] = True
                out[row] = self._out[slot]
        return mask, out

    def take(self, cube: Cube, limit: int
             ) -> Tuple[np.ndarray, np.ndarray]:
        """Up to ``limit`` stored rows satisfying ``cube``.

        Returns ``(patterns, outputs)`` slices (copies).  Served rows
        count as hits.
        """
        self.stats.take_calls += 1
        obs.count("bank.take_calls")
        if limit <= 0 or self._size == 0:
            empty = np.empty((0, self.num_pis), dtype=np.uint8)
            return empty, np.empty((0, self.num_pos), dtype=np.uint8)
        # Packed match against the word mirror: only the cube's literal
        # rows are touched, 64 slots per word op.
        lits = list(cube.literals())
        obs.pcount("bank.scan_words",
                   max(1, len(lits)) * self._pat_words.shape[1])
        if not self._ever_invalidated:
            # Fast path: no tombstones, occupied slots are a prefix (or
            # the whole ring once wrapped).  Empty slots beyond _size
            # hold all-zero patterns that an all-negative cube would
            # match, so the unpacked mask is sliced to the prefix.
            slots = self._size if self._size < self.max_rows \
                else self.max_rows
            mask = bitops.cube_eval_words(self._pat_words, slots, lits)
        else:
            # Tombstoned slots hold stale (possibly poisoned) rows: mask
            # them out explicitly instead of trusting the prefix
            # invariant.
            mask = bitops.cube_eval_words(self._pat_words, self.max_rows,
                                          lits) & self._valid
        picks = np.flatnonzero(mask)[:limit]
        self.stats.hits += picks.shape[0]
        obs.count("bank.rows_hit", int(picks.shape[0]))
        return self._pat[picks].copy(), self._out[picks].copy()


class BankedOracle(Oracle):
    """Serve exact repeats from ``bank``, forward misses, record answers.

    Budget metering stays on ``inner`` — this wrapper never bills the
    real oracle for rows the bank absorbed.  Per-row hashing is skipped
    for batches above ``lookup_limit`` rows (fused sampling megablocks),
    which are simply forwarded and recorded.
    """

    obs_layer = "bank"

    def __init__(self, inner: Oracle, bank: SampleBank,
                 lookup_limit: int = 8192):
        super().__init__(inner.pi_names, inner.po_names)
        self._inner = inner
        self._bank = bank
        self._lookup_limit = lookup_limit

    @property
    def inner(self) -> Oracle:
        return self._inner

    @property
    def bank(self) -> SampleBank:
        return self._bank

    def _evaluate(self, patterns: np.ndarray) -> np.ndarray:
        bank = self._bank
        if patterns.shape[0] > self._lookup_limit:
            out = self._inner.query(patterns, validate=False)
            bank.stats.misses += patterns.shape[0]
            obs.count("bank.rows_missed", patterns.shape[0])
            bank.record(patterns, out)
            return out
        mask, out = bank.lookup(patterns)
        hits = int(mask.sum())
        misses = patterns.shape[0] - hits
        bank.stats.hits += hits
        bank.stats.misses += misses
        obs.count("bank.rows_hit", hits)
        obs.count("bank.rows_missed", misses)
        if misses == 0:
            return out
        miss_rows = np.ascontiguousarray(patterns[~mask])
        answers = self._inner.query(miss_rows, validate=False)
        out[~mask] = answers
        bank.record(miss_rows, answers)
        return out


def banked_probe(oracle: Oracle, cube: Cube, num: int,
                 rng: np.random.Generator, biases,
                 bank: Optional[SampleBank],
                 fresh_fraction: float = 0.25) -> np.ndarray:
    """The FBDT's constant-leaf probe: bank rows first, fresh rows after.

    Returns a ``(num, num_pos)`` output block for the subspace ``cube``.
    At least ``ceil(num * fresh_fraction)`` rows are always freshly
    sampled so a stale bank cannot starve the tree of new evidence.
    Fresh answers are recorded into ``bank`` (idempotent when ``oracle``
    is already a :class:`BankedOracle` over the same bank).
    """
    from repro.core.sampling import random_patterns

    if bank is None:
        probes = random_patterns(num, oracle.num_pis, rng, biases, cube)
        return oracle.query(probes, validate=False)
    if num <= 0:
        return np.empty((0, oracle.num_pos), dtype=np.uint8)
    fresh_min = max(1, int(np.ceil(num * fresh_fraction)))
    banked_pat, banked_out = bank.take(cube, num - fresh_min)
    want = num - banked_out.shape[0]
    if want <= 0:
        return banked_out
    probes = random_patterns(want, oracle.num_pis, rng, biases, cube)
    fresh = oracle.query(probes, validate=False)
    if not isinstance(oracle, BankedOracle):
        bank.stats.misses += want
        bank.record(probes, fresh)
    if banked_out.shape[0] == 0:
        return fresh
    return np.concatenate([banked_out, fresh], axis=0)
