"""Experiment harness: run learners over contest cases, collect Table II rows."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.eval.accuracy import accuracy
from repro.eval.patterns import contest_test_patterns
from repro.network.netlist import Netlist
from repro.oracle.base import Oracle
from repro.oracle.suite import ContestCase

# A learner maps a black-box oracle to a netlist.
Learner = Callable[[Oracle], Netlist]


@dataclass
class CaseResult:
    """One (case, learner) outcome — one cell group of Table II."""

    case_id: str
    category: str
    learner: str
    size: int
    accuracy: float
    time: float
    queries: int
    num_pis: int = 0
    num_pos: int = 0
    paper_size: Optional[int] = None
    paper_accuracy: Optional[float] = None
    extra: Dict = field(default_factory=dict)

    @property
    def meets_contest_bar(self) -> bool:
        """The contest's hard constraint: accuracy >= 99.99%."""
        return self.accuracy >= 0.9999


def run_case(case: ContestCase, learner: Learner, learner_name: str,
             test_patterns: int = 30000,
             rng: Optional[np.random.Generator] = None) -> CaseResult:
    """Learn one case and score it with the contest's 3-way test mix."""
    if rng is None:
        rng = np.random.default_rng(987654321)
    oracle = case.oracle()
    t0 = time.monotonic()
    learned = learner(oracle)
    elapsed = time.monotonic() - t0
    queries = oracle.query_count
    patterns = contest_test_patterns(case.num_pis, total=test_patterns,
                                     rng=rng)
    acc = accuracy(learned, case.golden, patterns)
    return CaseResult(case_id=case.case_id, category=case.category,
                      learner=learner_name, size=learned.gate_count(),
                      accuracy=acc, time=elapsed, queries=queries,
                      num_pis=case.num_pis, num_pos=case.num_pos,
                      paper_size=case.paper_size,
                      paper_accuracy=case.paper_accuracy)


def run_suite(cases: Sequence[ContestCase],
              learners: Dict[str, Learner],
              test_patterns: int = 30000,
              rng: Optional[np.random.Generator] = None,
              verbose: bool = False) -> List[CaseResult]:
    """Run every learner on every case (the full Table II experiment)."""
    results: List[CaseResult] = []
    for case in cases:
        for name, learner in learners.items():
            result = run_case(case, learner, name,
                              test_patterns=test_patterns, rng=rng)
            results.append(result)
            if verbose:
                print(f"{case.case_id:9s} {name:16s} size={result.size:7d} "
                      f"acc={result.accuracy * 100:8.3f}% "
                      f"time={result.time:7.1f}s")
    return results
