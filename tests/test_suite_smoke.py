"""Whole-suite smoke: every contest case runs the full pipeline.

Tiny budgets — the goal is that no case crashes, every interface is
honoured, and easy cases stay exact even under pressure.  The full-budget
evaluation lives in examples/contest_evaluation.py.
"""

import numpy as np
import pytest

from repro import LogicRegressor, RegressorConfig
from repro.eval import accuracy, contest_test_patterns
from repro.oracle.suite import _TABLE2, build_case

ALL_CASES = sorted(_TABLE2, key=lambda c: int(c.split("_")[1]))

TEMPLATE_CASES = {"case_2", "case_3", "case_6", "case_8", "case_12",
                  "case_15", "case_16", "case_20"}
EASY_CASES = {"case_7", "case_10", "case_13"}


@pytest.mark.slow
@pytest.mark.parametrize("case_id", ALL_CASES)
def test_full_pipeline_on_every_case(case_id):
    case = build_case(case_id)
    cfg = RegressorConfig(time_limit=6.0, r_support=128, r_node=24,
                          leaf_samples=32, optimize_iterations=1,
                          max_tree_nodes=256)
    oracle = case.oracle()
    result = LogicRegressor(cfg).learn(oracle)
    # Interface contract.
    assert result.netlist.pi_names == oracle.pi_names
    assert result.netlist.po_names == oracle.po_names
    assert len(result.reports) == case.num_pos
    assert result.queries > 0
    # Behaviour floor.
    pats = contest_test_patterns(case.num_pis, total=3000,
                                 rng=np.random.default_rng(11))
    acc = accuracy(result.netlist, case.golden, pats)
    if case_id in TEMPLATE_CASES:
        assert acc == 1.0, f"{case_id} template category must be exact"
    elif case_id in EASY_CASES:
        # r_support=128 under-approximates some supports; the full-budget
        # integration tests assert exactness — here 97% guards crashes
        # and gross regressions only.
        assert acc >= 0.97, f"{case_id} easy case regressed: {acc}"
    else:
        assert acc > 0.0
