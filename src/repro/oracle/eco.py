"""ECO category: patch / logic-difference circuits.

Contest ECO cases expose the patch logic of an engineering change order:
many outputs, each a moderate function of a small-to-medium subset of the
inputs (the rest of the inputs are don't-care for that output).  This is
the regime where the decision-tree procedure shines (Table II).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.network.netlist import Netlist
from repro.oracle.netlist_oracle import NetlistOracle
from repro.oracle.random_logic import random_cone, random_support


def build_eco_netlist(num_pis: int, num_pos: int, seed: int,
                      support_low: int = 3, support_high: int = 10,
                      gates_per_output: int = 12) -> Netlist:
    """An ECO-style golden circuit: independent small-support patch cones."""
    rng = np.random.default_rng(seed)
    net = Netlist(f"eco_s{seed}")
    pis = [net.add_pi(_eco_pi_name(rng, i)) for i in range(num_pis)]
    for k in range(num_pos):
        size = int(rng.integers(support_low, support_high + 1))
        support = random_support(rng, pis, size)
        if len(support) < 2:
            support = pis[:2]
        root = random_cone(net, rng, support,
                           num_gates=gates_per_output)
        net.add_po(f"po_{k}", root)
    return net


def make_eco_oracle(num_pis: int, num_pos: int, seed: int,
                    support_low: int = 3, support_high: int = 10,
                    gates_per_output: int = 12,
                    query_budget: Optional[int] = None) -> NetlistOracle:
    net = build_eco_netlist(num_pis, num_pos, seed,
                            support_low=support_low,
                            support_high=support_high,
                            gates_per_output=gates_per_output)
    return NetlistOracle(net, query_budget=query_budget)


def _eco_pi_name(rng: np.random.Generator, index: int) -> str:
    """Industrial-looking scalar net names (no bus structure)."""
    prefixes = ["n", "net", "g", "w", "sig"]
    prefix = prefixes[int(rng.integers(len(prefixes)))]
    return f"{prefix}{index}_{int(rng.integers(1000))}"
