"""Tests for the 20-case contest suite (Table II's workload column)."""

import numpy as np
import pytest

from repro.oracle.suite import (build_case, case_ids_by_category,
                                contest_suite)

# (case, category, PI, PO) straight from Table II.
TABLE2_ROWS = [
    ("case_1", "ECO", 121, 38), ("case_2", "DATA", 53, 19),
    ("case_3", "DIAG", 72, 1), ("case_4", "ECO", 56, 5),
    ("case_5", "NEQ", 87, 16), ("case_6", "DIAG", 76, 1),
    ("case_7", "ECO", 43, 7), ("case_8", "DIAG", 44, 5),
    ("case_9", "ECO", 173, 16), ("case_10", "NEQ", 37, 2),
    ("case_11", "NEQ", 60, 20), ("case_12", "DATA", 40, 26),
    ("case_13", "ECO", 43, 7), ("case_14", "NEQ", 50, 22),
    ("case_15", "DIAG", 80, 3), ("case_16", "DIAG", 26, 4),
    ("case_17", "ECO", 76, 33), ("case_18", "NEQ", 102, 2),
    ("case_19", "ECO", 73, 8), ("case_20", "DIAG", 51, 2),
]


@pytest.mark.parametrize("case_id,category,num_pis,num_pos", TABLE2_ROWS)
def test_case_matches_table2_row(case_id, category, num_pis, num_pos):
    case = build_case(case_id)
    assert case.category == category
    assert case.num_pis == num_pis
    assert case.num_pos == num_pos
    assert case.golden.num_pis == num_pis
    assert case.golden.num_pos == num_pos


def test_full_suite_has_20_cases():
    suite = contest_suite()
    assert len(suite) == 20
    assert len({c.case_id for c in suite}) == 20


def test_unknown_case_rejected():
    with pytest.raises(KeyError):
        build_case("case_99")


def test_categories_partition_the_suite():
    ids = set()
    for cat in ("NEQ", "ECO", "DIAG", "DATA"):
        ids.update(case_ids_by_category(cat))
    assert len(ids) == 20


def test_hidden_flags_match_paper():
    suite = {c.case_id: c for c in contest_suite()}
    hidden = {cid for cid, c in suite.items() if c.hidden}
    assert hidden == {f"case_{i}" for i in range(11, 21)}


def test_paper_reference_fields():
    case4 = build_case("case_4")
    assert case4.paper_size == 173
    assert case4.paper_accuracy == pytest.approx(100.0)
    case9 = build_case("case_9")
    assert case9.paper_size is None  # the '-' row


def test_oracle_is_deterministic_and_fresh():
    case = build_case("case_7")
    o1 = case.oracle()
    o2 = case.oracle()
    pats = np.random.default_rng(0).integers(
        0, 2, (64, case.num_pis)).astype(np.uint8)
    assert (o1.query(pats) == o2.query(pats)).all()
    assert o1.query_count == 64
    assert o2.query_count == 64  # independent counters


def test_rebuilding_case_gives_same_function():
    a = build_case("case_10")
    b = build_case("case_10")
    pats = np.random.default_rng(1).integers(
        0, 2, (128, a.num_pis)).astype(np.uint8)
    assert (a.oracle().query(pats) == b.oracle().query(pats)).all()


def test_neq_miters_not_constant():
    for cid in case_ids_by_category("NEQ"):
        case = build_case(cid)
        pats = np.random.default_rng(2).integers(
            0, 2, (2048, case.num_pis)).astype(np.uint8)
        out = case.oracle().query(pats)
        assert out.any(), f"{cid}: all miters constant 0"
