"""Tests for name based grouping (Sec. IV-A, Fig. 2)."""

import numpy as np
import pytest

from repro.core.grouping import (BusGroup, group_names, parse_indexed_name)


class TestParse:
    @pytest.mark.parametrize("name,stem,index", [
        ("a[3]", "a", 3),
        ("data(12)", "data", 12),
        ("bus_7", "bus", 7),
        ("q15", "q", 15),
        ("net_a[0]", "net_a", 0),
    ])
    def test_indexed_forms(self, name, stem, index):
        assert parse_indexed_name(name) == (stem, index)

    @pytest.mark.parametrize("name", ["clk", "enable", "123", "a[b]"])
    def test_non_indexed(self, name):
        assert parse_indexed_name(name) is None


class TestFig2Example:
    def test_fig2_example(self):
        """Fig. 2: a_2, a_1, a_0 group into N_a; (1,1,0) encodes 6."""
        names = ["a_2", "a_1", "a_0", "clk"]
        grouping = group_names(names)
        assert len(grouping.buses) == 1
        bus = grouping.buses[0]
        assert bus.stem == "a"
        assert bus.width == 3
        # positions[k] is the list index of bit k: a_0 is names[2], etc.
        assert bus.positions == (2, 1, 0)
        # (a2, a1, a0) = (1, 1, 0) -> N_a = 6.
        values = [1, 1, 0, 0]  # indexed by position in `names`
        assert bus.decode(values) == 6
        assert grouping.scalars == [3]


class TestGrouping:
    def test_min_width_threshold(self):
        grouping = group_names(["x[0]", "x[1]", "lone[0]"], min_width=2)
        assert len(grouping.buses) == 1
        assert grouping.buses[0].stem == "x"
        assert 2 in grouping.scalars

    def test_sparse_indices_rejected(self):
        # Missing index 1 -> binary encoding untrustworthy -> scalars.
        grouping = group_names(["v[0]", "v[2]", "v[3]"])
        assert grouping.buses == []
        assert grouping.scalars == [0, 1, 2]

    def test_duplicate_index_poisons_stem(self):
        grouping = group_names(["d1", "d_1", "d0"])
        assert grouping.buses == []

    def test_multiple_buses(self):
        names = [f"a[{i}]" for i in range(4)] + [f"b[{i}]" for i in range(3)]
        grouping = group_names(names)
        stems = sorted(b.stem for b in grouping.buses)
        assert stems == ["a", "b"]
        assert grouping.scalars == []

    def test_positions_in_buses(self):
        grouping = group_names(["p[0]", "q", "p[1]"])
        assert sorted(grouping.positions_in_buses()) == [0, 2]

    def test_bus_by_stem(self):
        grouping = group_names(["m[0]", "m[1]"])
        assert grouping.bus_by_stem("m") is not None
        assert grouping.bus_by_stem("z") is None


class TestBusGroup:
    def test_encode_decode_round_trip(self):
        bus = BusGroup("v", (4, 2, 0))
        for value in range(8):
            enc = bus.encode(value)
            vals = [0] * 5
            for pos, bit in enc.items():
                vals[pos] = bit
            assert bus.decode(vals) == value

    def test_encode_out_of_range(self):
        bus = BusGroup("v", (0, 1))
        with pytest.raises(ValueError):
            bus.encode(4)

    def test_decode_batch(self):
        bus = BusGroup("v", (1, 0))  # bit0 at column 1, bit1 at column 0
        pats = np.array([[0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        assert bus.decode_batch(pats).tolist() == [1, 2, 3]
