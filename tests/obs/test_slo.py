"""SLO rules, signal extraction, and transition reporting."""

import json

import pytest

from repro.obs.slo import (BREACHED, DEGRADED, HEALTHY, SloEvaluator,
                           SloPolicy, SloRule, default_policy)


def snapshot(*, dispatched=10, retries=0, checked=0, failed=0,
             tiers=None):
    return {
        "jobs": {"dispatched": dispatched, "retries": retries},
        "verification": {"checked": checked, "failed": failed},
        "tiers": tiers or {},
    }


class TestSloRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SloRule("x", "made_up", degraded=1, breached=2)

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            SloRule("x", "retry_rate", degraded=0.5, breached=0.1)

    def test_retry_rate_thresholds(self):
        rule = SloRule("rr", "retry_rate", degraded=0.2, breached=0.5)
        assert rule.evaluate(snapshot(retries=1))["status"] == HEALTHY
        assert rule.evaluate(
            snapshot(retries=3))["status"] == DEGRADED
        assert rule.evaluate(
            snapshot(retries=6))["status"] == BREACHED

    def test_no_traffic_is_healthy(self):
        rule = SloRule("rr", "retry_rate", degraded=0.0, breached=0.0)
        record = rule.evaluate(snapshot(dispatched=0))
        assert record["status"] == HEALTHY
        assert record["signal"] is None

    def test_queue_latency_scopes_to_tier(self):
        tiers = {
            "interactive": {"queue_latency": {"p95": 0.5}},
            "batch": {"queue_latency": {"p95": 90.0}},
        }
        scoped = SloRule("qi", "queue_latency_p95", degraded=1.0,
                         breached=10.0, tier="interactive")
        assert scoped.evaluate(
            snapshot(tiers=tiers))["status"] == HEALTHY
        fleet_wide = SloRule("qf", "queue_latency_p95", degraded=1.0,
                             breached=10.0)
        # Fleet-wide takes the worst tier.
        assert fleet_wide.evaluate(
            snapshot(tiers=tiers))["status"] == BREACHED

    def test_verify_failure_rate(self):
        rule = SloRule("vf", "verify_failure_rate", degraded=0.01,
                       breached=0.10)
        assert rule.evaluate(
            snapshot(checked=100, failed=5))["status"] == DEGRADED
        assert rule.evaluate(
            snapshot(checked=100, failed=50))["status"] == BREACHED

    def test_budget_burn(self):
        tiers = {"batch": {"budget_burn": 0.9}}
        rule = SloRule("bb", "budget_burn", degraded=0.8, breached=1.0)
        assert rule.evaluate(
            snapshot(tiers=tiers))["status"] == DEGRADED


class TestSloPolicy:
    def test_round_trips_through_json(self, tmp_path):
        policy = default_policy()
        path = tmp_path / "policy.json"
        path.write_text(json.dumps(policy.to_dict()))
        loaded = SloPolicy.load(str(path))
        assert loaded.to_dict() == policy.to_dict()


class TestSloEvaluator:
    def _policy(self):
        return SloPolicy(name="t", rules=[
            SloRule("retry-rate", "retry_rate", degraded=0.2,
                    breached=0.5)])

    def test_quiet_on_first_healthy_evaluation(self):
        ev = SloEvaluator(self._policy())
        assert ev.transitions(snapshot(retries=0)) == []
        assert ev.overall() == HEALTHY

    def test_reports_flip_once_then_silence(self):
        ev = SloEvaluator(self._policy())
        ev.transitions(snapshot(retries=0))
        flips = ev.transitions(snapshot(retries=3))
        assert len(flips) == 1
        assert flips[0]["status"] == DEGRADED
        assert flips[0]["previous"] == HEALTHY
        # Same state again: no new record.
        assert ev.transitions(snapshot(retries=3)) == []
        assert ev.overall() == DEGRADED

    def test_first_evaluation_reports_only_unhealthy(self):
        ev = SloEvaluator(self._policy())
        flips = ev.transitions(snapshot(retries=6))
        assert len(flips) == 1
        assert flips[0]["status"] == BREACHED

    def test_recovery_reported(self):
        ev = SloEvaluator(self._policy())
        ev.transitions(snapshot(retries=6))
        flips = ev.transitions(snapshot(dispatched=100, retries=0))
        assert len(flips) == 1
        assert flips[0]["status"] == HEALTHY
        assert flips[0]["previous"] == BREACHED
