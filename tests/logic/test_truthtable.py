"""Unit tests for packed truth tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import Cube
from repro.logic.sop import Sop
from repro.logic.truthtable import IsopOverflow, TruthTable


def tables(num_vars):
    return st.integers(0, (1 << (1 << num_vars)) - 1).map(
        lambda bits: TruthTable.from_minterms(
            [m for m in range(1 << num_vars) if (bits >> m) & 1], num_vars))


class TestConstruction:
    def test_constants(self):
        assert TruthTable.zeros(4).is_zero()
        assert TruthTable.ones(4).is_one()
        assert TruthTable.zeros(4).count_ones() == 0
        assert TruthTable.ones(4).count_ones() == 16

    def test_variable_projection(self):
        for v in range(8):
            tt = TruthTable.variable(v, 8)
            assert tt.count_ones() == 128
            assert tt.get(1 << v) == 1
            assert tt.get(0) == 0

    def test_variable_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.variable(3, 3)

    def test_from_minterms_round_trip(self):
        tt = TruthTable.from_minterms([1, 4, 9], 4)
        assert tt.minterms() == [1, 4, 9]

    def test_minterm_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.from_minterms([16], 4)

    def test_from_function(self):
        tt = TruthTable.from_function(lambda b: b[0] and not b[1], 2)
        assert tt.minterms() == [1]

    def test_from_values(self):
        tt = TruthTable.from_values([0, 1, 1, 0])
        assert tt.minterms() == [1, 2]

    def test_from_values_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_values([0, 1, 1])

    def test_sub_word_padding_masked(self):
        tt = TruthTable(2, np.array([0xFFFFFFFFFFFFFFFF], dtype=np.uint64))
        assert tt.count_ones() == 4  # only the 4 real bits survive

    def test_wide_tables(self):
        tt = TruthTable.variable(9, 10)
        assert tt.count_ones() == 512
        assert tt.support() == [9]


class TestOperations:
    def test_boolean_ops_agree_with_python(self):
        a = TruthTable.from_function(lambda b: b[0] ^ b[1], 3)
        b = TruthTable.from_function(lambda b: b[1] and b[2], 3)
        for m in range(8):
            bits = [(m >> v) & 1 for v in range(3)]
            assert (a & b).get(m) == ((bits[0] ^ bits[1])
                                      and (bits[1] and bits[2]))
            assert (a | b).get(m) == ((bits[0] ^ bits[1])
                                      or (bits[1] and bits[2]))
            assert (a ^ b).get(m) == ((bits[0] ^ bits[1])
                                      != (bits[1] and bits[2]))
            assert (~a).get(m) == (1 - (bits[0] ^ bits[1]))

    def test_universe_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.zeros(3) & TruthTable.zeros(4)

    def test_cofactor_small_variable(self):
        tt = TruthTable.from_function(lambda b: b[0] and b[2], 3)
        assert (tt.cofactor(0, 1)
                == TruthTable.from_function(lambda b: b[2], 3))
        assert tt.cofactor(0, 0).is_zero()

    def test_cofactor_wide_variable(self):
        tt = TruthTable.from_function(lambda b: b[7] ^ b[0], 8)
        pos = tt.cofactor(7, 1)
        assert pos == TruthTable.from_function(lambda b: not b[0], 8)

    def test_support_and_depends(self):
        tt = TruthTable.from_function(lambda b: b[1] or b[3], 5)
        assert tt.support() == [1, 3]
        assert tt.depends_on(1) and not tt.depends_on(0)

    def test_evaluate_one(self):
        tt = TruthTable.from_function(lambda b: b[0] and b[1], 2)
        assert tt.evaluate_one([1, 1]) == 1
        assert tt.evaluate_one([1, 0]) == 0

    def test_compose_permutation(self):
        tt = TruthTable.from_function(lambda b: b[0] and not b[1], 2)
        lifted = tt.compose_permutation([4, 2], 5)
        expect = TruthTable.from_function(lambda b: b[4] and not b[2], 5)
        assert lifted == expect

    def test_compose_permutation_missing_image(self):
        tt = TruthTable.variable(0, 2)
        with pytest.raises(ValueError):
            tt.compose_permutation([-1, 0], 3)


class TestIsop:
    def test_isop_constant(self):
        assert TruthTable.zeros(3).isop().is_zero()
        assert TruthTable.ones(3).isop().is_one()

    def test_isop_overflow(self):
        tt = TruthTable.random(8, np.random.default_rng(5))
        with pytest.raises(IsopOverflow):
            tt.isop(max_cubes=2)

    @given(tt=tables(4))
    @settings(max_examples=150, deadline=None)
    def test_isop_exact(self, tt):
        assert TruthTable.from_sop(tt.isop()) == tt

    @given(tt=tables(4))
    @settings(max_examples=100, deadline=None)
    def test_isop_cubes_are_implicants(self, tt):
        for cube in tt.isop().cubes:
            term = TruthTable.from_sop(Sop([cube], 4))
            assert (term & ~tt).is_zero()


@given(tt=tables(4), var=st.integers(0, 3))
@settings(max_examples=150, deadline=None)
def test_shannon_identity(tt, var):
    x = TruthTable.variable(var, 4)
    rebuilt = (x & tt.cofactor(var, 1)) | (~x & tt.cofactor(var, 0))
    assert rebuilt == tt


@given(tt=tables(4))
@settings(max_examples=100, deadline=None)
def test_double_complement(tt):
    assert ~~tt == tt


@given(tt=tables(4))
@settings(max_examples=100, deadline=None)
def test_count_ones_matches_minterms(tt):
    assert tt.count_ones() == len(tt.minterms())


def test_random_is_seeded():
    a = TruthTable.random(7, np.random.default_rng(1))
    b = TruthTable.random(7, np.random.default_rng(1))
    assert a == b
