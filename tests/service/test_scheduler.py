"""Scheduler edge cases: the satellite checklist plus isolation.

Everything here runs in inline dispatch mode — deterministic and
single-process — except the cancel-while-running case, which needs a
real worker to kill.
"""

import os
import time

import pytest

from repro.service.cache import CrossJobCache
from repro.service.jobs import TERMINAL_STATUSES, JobStatus
from repro.service.scheduler import JobScheduler, SchedulerPolicy
from repro.service.spool import Spool


def inline_policy(**kw):
    kw.setdefault("inline", True)
    kw.setdefault("poll_interval", 0.01)
    kw.setdefault("retry_backoff_base", 0.0)
    return SchedulerPolicy(**kw)


class TestEmptyQueue:
    def test_drain_on_empty_spool_returns_immediately(self, spool):
        sched = JobScheduler(spool, inline_policy())
        start = time.monotonic()
        summary = sched.drain(timeout=5.0)
        assert summary == {}
        assert time.monotonic() - start < 1.0
        assert not sched.pending_work()

    def test_tick_on_empty_spool_is_a_noop(self, spool):
        sched = JobScheduler(spool, inline_policy())
        sched.tick()
        assert sched.stats.dispatched == 0


class TestDuplicateIds:
    def test_second_submit_rejected_first_unharmed(self, spool,
                                                   make_spec):
        from repro.service.spool import DuplicateJobError
        spool.submit(make_spec("dup"))
        with pytest.raises(DuplicateJobError):
            spool.submit(make_spec("dup", seed=99))
        sched = JobScheduler(spool, inline_policy())
        sched.drain(timeout=60.0)
        assert spool.status("dup") in (JobStatus.VERIFIED,
                                       JobStatus.REPAIRED)
        # The surviving spec is the original, not the loser's.
        assert spool.read_spec("dup").seed == 7


class TestCancel:
    def test_cancel_before_dispatch(self, spool, make_spec):
        spool.submit(make_spec("c1"))
        spool.request_cancel("c1", "operator said no")
        sched = JobScheduler(spool, inline_policy())
        sched.tick()
        assert spool.status("c1") == JobStatus.CANCELLED
        assert sched.stats.cancelled == 1
        assert sched.stats.dispatched == 0

    def test_cancel_queued_job_never_dispatches(self, spool, make_spec):
        spool.submit(make_spec("c2"))
        sched = JobScheduler(spool, inline_policy())
        sched.poll_submissions()  # now queued
        assert spool.status("c2") == JobStatus.QUEUED
        spool.request_cancel("c2")
        sched.tick()
        assert spool.status("c2") == JobStatus.CANCELLED
        assert sched.stats.dispatched == 0

    @pytest.mark.slow
    def test_cancel_while_running_kills_worker(self, spool, make_spec):
        # A worker wedged in a long sleep: cancel must terminate it.
        spool.submit(make_spec("c3", fault="sleep:30",
                               fault_attempts=999))
        sched = JobScheduler(spool, SchedulerPolicy(
            inline=False, poll_interval=0.01, heartbeat_timeout=60.0))
        try:
            deadline = time.monotonic() + 30.0
            while (spool.status("c3") != JobStatus.RUNNING
                   and time.monotonic() < deadline):
                sched.tick()
                time.sleep(0.05)
            assert spool.status("c3") == JobStatus.RUNNING
            worker = sched._running["c3"].proc
            spool.request_cancel("c3", "tenant hit ^C")
            sched.tick()
            assert spool.status("c3") == JobStatus.CANCELLED
            worker.join(timeout=10.0)
            assert not worker.is_alive()
            assert sched.stats.cancelled == 1
        finally:
            sched.shutdown()


class TestAdmissionUnderLoad:
    def test_flood_sheds_with_structured_rejections(self, spool,
                                                    make_spec):
        for i in range(5):
            spool.submit(make_spec(f"f{i}", priority=5 - i))
        sched = JobScheduler(spool, inline_policy(queue_depth=2,
                                                  max_active=1))
        sched.poll_submissions()
        queued = spool.jobs_with_status(JobStatus.QUEUED)
        rejected = spool.jobs_with_status(JobStatus.REJECTED)
        assert len(queued) == 2
        assert len(rejected) == 3
        # Best-first admission: the two highest priorities got in.
        assert sorted(queued) == ["f0", "f1"]
        for job_id in rejected:
            record = spool.read_state(job_id)["rejection"]
            assert record["reason_code"] == "queue-full"
            assert record["capacity"] == 2

    def test_rejected_jobs_count_as_terminal(self, spool, make_spec):
        spool.submit(make_spec("r0"))
        spool.submit(make_spec("r1"))
        sched = JobScheduler(spool, inline_policy(queue_depth=1,
                                                  max_active=1))
        sched.drain(timeout=60.0)
        assert spool.all_terminal()
        statuses = {j: spool.status(j) for j in ("r0", "r1")}
        assert JobStatus.REJECTED in statuses.values()


class TestRecovery:
    def test_resume_with_missing_checkpoint_still_terminates(
            self, spool, make_spec):
        """Crash-resume where the checkpoint never got written: the
        job must rerun from scratch and land terminal, not wedge."""
        spool.submit(make_spec("m1"))
        spool.transition("m1", JobStatus.QUEUED)
        spool.transition("m1", JobStatus.RUNNING, attempt=0)
        assert not os.path.exists(spool.checkpoint_path("m1"))
        sched = JobScheduler(spool, inline_policy())
        assert sched.recover() == ["m1"]
        assert sched.stats.recovered == 1
        sched.drain(timeout=60.0)
        assert spool.status("m1") in (JobStatus.VERIFIED,
                                      JobStatus.REPAIRED)
        # Resumed attempt is 1; billing rows carry unique attempts.
        rows = spool.read_state("m1")["billing"]
        assert [r["attempt"] for r in rows] == [1]

    def test_recover_requeues_without_charging_retry_budget(
            self, spool, make_spec):
        spool.submit(make_spec("m2"))
        spool.transition("m2", JobStatus.QUEUED)
        spool.transition("m2", JobStatus.RUNNING, attempt=3)
        sched = JobScheduler(spool, inline_policy(max_job_retries=0))
        sched.recover()
        # attempt bumped, but the per-life retry ledger is untouched.
        assert spool.read_state("m2")["attempt"] == 4
        assert sched._retries == {}
        sched.drain(timeout=60.0)
        assert spool.status("m2") in TERMINAL_STATUSES

    def test_recover_requeues_queued_without_admission(self, spool,
                                                       make_spec):
        # Depth 1, two already-queued jobs: both were admitted by a
        # previous life and must both run, not be re-shed.
        spool.submit(make_spec("q0"))
        spool.submit(make_spec("q1"))
        spool.transition("q0", JobStatus.QUEUED)
        spool.transition("q1", JobStatus.QUEUED)
        sched = JobScheduler(spool, inline_policy(queue_depth=1))
        sched.recover()
        sched.drain(timeout=120.0)
        for job_id in ("q0", "q1"):
            assert spool.status(job_id) in (JobStatus.VERIFIED,
                                            JobStatus.REPAIRED)


class TestRetries:
    def test_inline_crash_retries_then_succeeds(self, spool, make_spec):
        spool.submit(make_spec("cr", fault="crash", fault_attempts=1))
        sched = JobScheduler(spool, inline_policy(max_job_retries=1))
        sched.drain(timeout=60.0)
        assert spool.status("cr") in (JobStatus.VERIFIED,
                                      JobStatus.REPAIRED)
        assert sched.stats.crashes == 1
        assert sched.stats.redispatches == 1
        # Only the surviving attempt billed: no double-billing.
        rows = spool.read_state("cr")["billing"]
        assert [r["attempt"] for r in rows] == [1]

    def test_retry_budget_exhausted_fails_terminally(self, spool,
                                                     make_spec):
        spool.submit(make_spec("ex", fault="crash", fault_attempts=999))
        sched = JobScheduler(spool, inline_policy(max_job_retries=1))
        sched.drain(timeout=60.0)
        assert spool.status("ex") == JobStatus.FAILED
        assert "retry budget exhausted" in \
            spool.read_state("ex")["detail"]

    def test_poisoned_job_does_not_infect_neighbors(self, spool,
                                                    make_spec):
        spool.submit(make_spec("bad", fault="crash", fault_attempts=999))
        spool.submit(make_spec("good"))
        sched = JobScheduler(spool, inline_policy(max_job_retries=1))
        sched.drain(timeout=120.0)
        assert spool.status("bad") == JobStatus.FAILED
        assert spool.status("good") in (JobStatus.VERIFIED,
                                        JobStatus.REPAIRED)


class TestPriority:
    def test_dispatch_order_follows_priority(self, spool, make_spec):
        order = []
        spool.submit(make_spec("low", tier="batch"))
        spool.submit(make_spec("hi", tier="interactive"))
        spool.submit(make_spec("mid", tier="standard"))
        sched = JobScheduler(
            spool, inline_policy(max_active=1),
            on_event=lambda kind, job_id, detail:
                order.append(job_id) if kind == "dispatch" else None)
        sched.drain(timeout=120.0)
        assert order == ["hi", "mid", "low"]


class TestCrossJobCache:
    def test_second_job_prefills_from_first(self, spool, make_spec,
                                            tmp_path):
        cache = CrossJobCache(str(tmp_path / "xcache"))
        spool.submit(make_spec("first"))
        sched = JobScheduler(spool, inline_policy(), cache=cache)
        sched.drain(timeout=60.0)
        assert cache.stats()["stores"] >= 1
        spool.submit(make_spec("second"))
        sched.tick()
        sched.drain(timeout=60.0)
        stats = cache.stats()
        assert stats["hits"] >= 1
        assert stats["rows_served"] > 0


class TestPolicy:
    @pytest.mark.parametrize("kw", [
        {"max_active": 0}, {"queue_depth": 0}, {"poll_interval": 0.0},
        {"heartbeat_interval": 1.0, "heartbeat_timeout": 0.5},
        {"wall_slack": 0.5}, {"wall_grace": -1.0},
        {"max_job_retries": -1}, {"retry_backoff_base": -0.1},
    ])
    def test_bad_policy_rejected(self, kw):
        with pytest.raises(ValueError):
            SchedulerPolicy(**kw).validate()

    def test_scheduler_constructor_validates(self, spool):
        with pytest.raises(ValueError):
            JobScheduler(spool, SchedulerPolicy(max_active=0))
