"""Admission control: bounded queues and structured load shedding.

An overloaded service must say *no* early, cheaply, and legibly — never
by OOM-ing, hanging, or starving the jobs it already accepted.  The
controller's contract:

- the scheduler's in-memory footprint is bounded by
  ``queue_depth + max_active`` jobs regardless of how many submissions
  flood the spool;
- a shed job is terminally ``rejected`` with a machine-readable record
  (``reason_code``, observed depth, capacity) in its state journal, so
  the tenant learns *why* and can resubmit with backoff;
- admission is strictly ordered by (priority, submission time): a flood
  of low-priority submissions cannot push out an earlier high-priority
  one observed in the same scan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.jobs import JobSpec


@dataclass
class AdmissionPolicy:
    """Capacity knobs of the admission controller."""

    queue_depth: int = 16
    """Jobs allowed to wait in the ready queue (excludes running)."""

    max_active: int = 2
    """Jobs allowed to run concurrently."""

    max_time_limit: float = 3600.0
    """Hard ceiling on a job's requested wall budget; above it the job
    is shed at admission (a tenant cannot buy the whole service)."""

    def validate(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.max_active < 1:
            raise ValueError("max_active must be >= 1")
        if self.max_time_limit <= 0:
            raise ValueError("max_time_limit must be positive")


@dataclass
class AdmissionDecision:
    """The structured verdict recorded in the job's state journal."""

    admitted: bool
    reason_code: str = "admitted"
    detail: str = ""
    queue_depth: int = 0
    capacity: int = 0

    def to_json(self) -> dict:
        return {
            "admitted": self.admitted,
            "reason_code": self.reason_code,
            "detail": self.detail,
            "queue_depth": self.queue_depth,
            "capacity": self.capacity,
        }


def admission_decision(spec: JobSpec, queued_now: int,
                       policy: AdmissionPolicy, *,
                       brownout: bool = False) -> AdmissionDecision:
    """Admit or shed one submission given the current queue depth.

    Under a storage brownout (disk pressure past the ``storage`` SLO
    thresholds) batch-tier work is shed at the door: batch backfill is
    the load we can refuse without breaking anyone's interactive
    promise, and every admitted job is bytes the filesystem may not
    have.  The rejection is structured (``storage-pressure``) so the
    tenant knows to resubmit once the fleet recovers.
    """
    if brownout and spec.tier == "batch":
        return AdmissionDecision(
            False, reason_code="storage-pressure",
            detail=("fleet is in a storage brownout (disk pressure); "
                    "batch admissions are shed — resubmit when the "
                    "fleet recovers"),
            queue_depth=queued_now, capacity=policy.queue_depth)
    if spec.effective_time_limit > policy.max_time_limit:
        return AdmissionDecision(
            False, reason_code="budget-too-large",
            detail=(f"time_limit {spec.effective_time_limit:.0f}s exceeds "
                    f"the service ceiling {policy.max_time_limit:.0f}s"),
            queue_depth=queued_now, capacity=policy.queue_depth)
    if queued_now >= policy.queue_depth:
        return AdmissionDecision(
            False, reason_code="queue-full",
            detail=(f"ready queue at capacity "
                    f"({queued_now}/{policy.queue_depth}); resubmit "
                    "with backoff"),
            queue_depth=queued_now, capacity=policy.queue_depth)
    return AdmissionDecision(True, queue_depth=queued_now,
                             capacity=policy.queue_depth)
