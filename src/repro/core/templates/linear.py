"""Linear-arithmetic template matching (Sec. IV-B2).

Hypothesis: an output bus computes ``N_z = sum a_i * N_vi + b (mod 2^w)``.
The constants fall out of controlled queries exactly as the paper
describes: ``b`` from the all-zero input, each ``a_i`` from setting
``N_vi = 1`` with every other bus zero.  A randomized verification pass
(which also exercises the non-bus inputs) accepts or rejects the
hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.grouping import BusGroup, Grouping
from repro.core.sampling import random_patterns
from repro.oracle.base import Oracle


@dataclass(frozen=True)
class LinearMatch:
    """A confirmed linear-arithmetic hypothesis for one output bus."""

    out_bus: BusGroup  # positions index the PO name list
    in_buses: Tuple[BusGroup, ...]  # positions index the PI name list
    coefficients: Tuple[int, ...]  # residues mod 2^width
    constant: int

    @property
    def width(self) -> int:
        return self.out_bus.width

    def evaluate_ints(self, operands: List[np.ndarray]) -> np.ndarray:
        acc = np.full(operands[0].shape, self.constant, dtype=np.int64)
        for coeff, n in zip(self.coefficients, operands):
            acc += coeff * n
        return acc % (1 << self.width)

    def describe(self) -> str:
        terms = [f"{a}*N_{v.stem}"
                 for a, v in zip(self.coefficients, self.in_buses)]
        return f"N_{self.out_bus.stem} = " + " + ".join(terms) \
            + f" + {self.constant} (mod 2^{self.width})"


def match_linear(oracle: Oracle, pi_grouping: Grouping, out_bus: BusGroup,
                 rng: np.random.Generator, num_samples: int = 192
                 ) -> Optional[LinearMatch]:
    """Try to explain an output bus as a linear combination of input buses."""
    in_buses = pi_grouping.buses
    if not in_buses:
        return None
    width = out_bus.width
    modulus = 1 << width
    # Controlled probes: all-zero, then one-hot per bus.  Non-bus inputs
    # stay 0 for the probes; the verification pass randomizes them.
    probes = np.zeros((1 + len(in_buses), oracle.num_pis), dtype=np.uint8)
    for row, bus in enumerate(in_buses, start=1):
        for pos, bit in bus.encode(1).items():
            probes[row, pos] = bit
    out = oracle.query(probes)
    constant = int(out_bus.decode_batch(out[:1])[0])
    coefficients = []
    for row in range(1, probes.shape[0]):
        value = int(out_bus.decode_batch(out[row:row + 1])[0])
        coefficients.append((value - constant) % modulus)
    match = LinearMatch(out_bus=out_bus, in_buses=tuple(in_buses),
                        coefficients=tuple(coefficients), constant=constant)
    if _verify(oracle, match, rng, num_samples):
        return _simplified(match)
    return None


def _verify(oracle: Oracle, match: LinearMatch, rng: np.random.Generator,
            num_samples: int) -> bool:
    samples = random_patterns(num_samples, oracle.num_pis, rng,
                              biases=(0.5, 0.2, 0.8))
    out = oracle.query(samples)
    got = match.out_bus.decode_batch(out)
    operands = [bus.decode_batch(samples) for bus in match.in_buses]
    expect = match.evaluate_ints(operands)
    return bool(np.array_equal(got, expect))


def _simplified(match: LinearMatch) -> LinearMatch:
    """Drop zero-coefficient operands from a confirmed match."""
    keep = [(bus, coeff) for bus, coeff
            in zip(match.in_buses, match.coefficients) if coeff != 0]
    if len(keep) == len(match.in_buses):
        return match
    buses = tuple(b for b, _ in keep)
    coeffs = tuple(c for _, c in keep)
    return LinearMatch(out_bus=match.out_bus, in_buses=buses,
                       coefficients=coeffs, constant=match.constant)
