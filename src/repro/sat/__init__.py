"""SAT substrate: a CDCL solver, CNF/Tseitin encoding, equivalence checking.

Used by the fraig pass (SAT sweeping) and by the test-suite to verify that
optimized circuits stay equivalent to what was learned.
"""

from repro.sat.solver import Solver, SolveResult
from repro.sat.cnf import Cnf
from repro.sat.equivalence import are_equivalent, find_counterexample

__all__ = ["Solver", "SolveResult", "Cnf", "are_equivalent",
           "find_counterexample"]
