"""Optimization scripts: dc2 / resyn3 / compress2rs-style pass sequences.

The paper's postprocessing (Sec. IV-E) runs ABC's ``dc2``, ``rewrite`` and
``resyn3`` "with higher probability than ``compress2rs``", performs
``collapse`` once, and caps everything at 60 seconds.  :func:`optimize_aig`
reproduces that policy over our passes: randomized script selection with the
same bias, a single collapse attempt, a wall-clock budget, and keep-best
semantics on the contest gate-count metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.aig.aig import Aig
from repro.network.netlist import Netlist
from repro.obs import context as obs
from repro.synth.balance import balance
from repro.synth.collapse import collapse
from repro.synth.fraig import fraig
from repro.synth.refactor import refactor
from repro.synth.rewrite import rewrite
from repro.synth.rebuild import copy_strash


def _run_script(aig: Aig, passes, deadline: Optional[float]) -> Aig:
    """Run a pass list, stopping (gracefully) when the deadline passes."""
    for p in passes:
        if deadline is not None and time.monotonic() >= deadline:
            break
        aig = p(aig)
    return aig


def dc2(aig: Aig, deadline: Optional[float] = None) -> Aig:
    """balance; rewrite; refactor; balance; rewrite (ABC dc2 skeleton)."""
    return _run_script(aig, [balance, rewrite, refactor, balance, rewrite],
                       deadline)


def resyn3(aig: Aig, deadline: Optional[float] = None) -> Aig:
    """balance; refactor(large); balance; rewrite (resyn3 skeleton)."""
    return _run_script(
        aig,
        [balance, lambda a: refactor(a, max_leaves=12), balance, rewrite],
        deadline)


def compress2rs(aig: Aig, rng: Optional[np.random.Generator] = None,
                deadline: Optional[float] = None) -> Aig:
    """The heavy script: interleaved balance/rewrite/refactor plus fraig."""
    return _run_script(
        aig,
        [balance, rewrite, refactor, lambda a: fraig(a, rng=rng), balance,
         rewrite],
        deadline)


_SCRIPTS: List[Tuple[str, float]] = [
    # (script name, selection weight) — dc2/rewrite/resyn3 favoured over
    # compress2rs, per the paper.
    ("dc2", 0.3),
    ("rewrite", 0.25),
    ("resyn3", 0.3),
    ("compress2rs", 0.15),
]


@dataclass
class OptimizeReport:
    """What the optimizer did and achieved."""

    initial_size: int
    final_size: int
    scripts_run: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def reduction(self) -> float:
        if self.initial_size == 0:
            return 0.0
        return 1.0 - self.final_size / self.initial_size


def optimize_aig(aig: Aig, time_limit: float = 60.0,
                 rng: Optional[np.random.Generator] = None,
                 max_iterations: int = 8,
                 collapse_support: int = 14) -> Tuple[Aig, OptimizeReport]:
    """Randomized keep-best optimization under a wall-clock budget."""
    if rng is None:
        rng = np.random.default_rng(2019)
    start = time.monotonic()
    best = copy_strash(aig)
    report = OptimizeReport(initial_size=best.size(),
                            final_size=best.size())
    report.scripts_run.append("strash")
    current = best

    def out_of_time() -> bool:
        return time.monotonic() - start > time_limit

    # Heavy collapse once (as in the paper), then the randomized loop.
    if not out_of_time():
        try:
            with obs.span("synth.script", script="collapse"):
                candidate = collapse(current, max_support=collapse_support)
            report.scripts_run.append("collapse")
            obs.count("synth.scripts", script="collapse")
            if candidate.size() < best.size():
                best = candidate
                current = candidate
        except (ValueError, MemoryError):
            pass
    names = [s for s, _ in _SCRIPTS]
    weights = np.array([w for _, w in _SCRIPTS])
    weights = weights / weights.sum()
    deadline = start + time_limit
    for _ in range(max_iterations):
        if out_of_time():
            break
        script = str(rng.choice(names, p=weights))
        with obs.span("synth.script", script=script):
            if script == "dc2":
                candidate = dc2(current, deadline=deadline)
            elif script == "rewrite":
                candidate = _run_script(current, [balance, rewrite],
                                        deadline)
            elif script == "resyn3":
                candidate = resyn3(current, deadline=deadline)
            else:
                candidate = compress2rs(current, rng=rng,
                                        deadline=deadline)
        report.scripts_run.append(script)
        obs.count("synth.scripts", script=script)
        if candidate.size() < best.size():
            best = candidate
        if candidate.size() <= current.size():
            current = candidate
        elif rng.random() < 0.25:
            current = candidate  # occasional uphill move
    # Final polish on small results: exact-rewrite + redundancy removal
    # (the don't-care-based resynthesis the paper's postprocessing cites).
    if best.size() <= 200 and not out_of_time():
        from repro.synth.redundancy import remove_redundancies

        with obs.span("synth.script", script="rewrite -x"):
            candidate = rewrite(best, exact=True)
        report.scripts_run.append("rewrite -x")
        obs.count("synth.scripts", script="rewrite -x")
        if candidate.size() < best.size():
            best = candidate
        if not out_of_time():
            with obs.span("synth.script", script="mfs"):
                candidate = remove_redundancies(best)
            report.scripts_run.append("mfs")
            obs.count("synth.scripts", script="mfs")
            if candidate.size() < best.size():
                best = candidate
    report.final_size = best.size()
    report.elapsed = time.monotonic() - start
    return best, report


def optimize_netlist(netlist: Netlist, time_limit: float = 60.0,
                     rng: Optional[np.random.Generator] = None,
                     max_iterations: int = 8
                     ) -> Tuple[Netlist, OptimizeReport]:
    """Gate-netlist front end: strash in, optimize, map back with XOR
    re-extraction, and keep whichever of (original, optimized) has the
    smaller contest gate count."""
    aig = Aig.from_netlist(netlist)
    best_aig, report = optimize_aig(aig, time_limit=time_limit, rng=rng,
                                    max_iterations=max_iterations)
    mapped = best_aig.to_netlist(name=netlist.name).cleaned()
    if mapped.gate_count() <= netlist.gate_count():
        report.final_size = mapped.gate_count()
        return mapped, report
    report.final_size = netlist.gate_count()
    return netlist, report
