"""Tests for FBDT construction (Sec. IV-D, Algorithm 2, Fig. 4)."""

import time

import numpy as np
import pytest

from repro.core.config import RegressorConfig, fast_config
from repro.core.fbdt import (build_decision_tree, enumerate_small_function,
                             learn_output)
from repro.logic.sop import Sop
from repro.network.netlist import Netlist
from repro.network.simulate import simulate
from repro.oracle.function_oracle import FunctionOracle
from repro.oracle.netlist_oracle import NetlistOracle


def oracle_from_fn(fn, num_pis, name="f"):
    def batched(p):
        return fn(p).astype(np.uint8).reshape(-1, 1)
    return FunctionOracle(batched, [f"x{i}" for i in range(num_pis)],
                          [name])


def check_cover_exact(cover, fn, num_pis, samples=2000, rng=None):
    rng = rng or np.random.default_rng(0)
    pats = rng.integers(0, 2, (samples, num_pis)).astype(np.uint8)
    got = cover.evaluate(pats)
    want = fn(pats).astype(np.uint8)
    return float((got == want).mean())


class TestExhaustiveSmallFunction:
    def test_exact_on_full_enumeration(self, rng):
        fn = lambda p: (p[:, 0] & p[:, 2]) | p[:, 4]
        oracle = oracle_from_fn(fn, 6)
        cfg = fast_config()
        cover = enumerate_small_function(oracle, 0, [0, 2, 4], cfg)
        assert cover.stats.exhausted
        assert check_cover_exact(cover, fn, 6) == 1.0

    def test_constant_zero(self, rng):
        oracle = oracle_from_fn(lambda p: np.zeros(p.shape[0]), 4)
        cover = enumerate_small_function(oracle, 0, [], fast_config())
        assert cover.onset.is_zero()

    def test_constant_one(self, rng):
        oracle = oracle_from_fn(lambda p: np.ones(p.shape[0]), 4)
        cover = enumerate_small_function(oracle, 0, [], fast_config())
        assert cover.onset.is_one()

    def test_offset_chosen_for_dense_function(self, rng):
        """A function that is almost always 1 should be realized as the
        complement of a small offset cover (trick 2)."""
        fn = lambda p: ~(p[:, 0] & p[:, 1] & p[:, 2]) & 1
        oracle = oracle_from_fn(lambda p: fn(p), 3)
        cover = enumerate_small_function(oracle, 0, [0, 1, 2],
                                         fast_config())
        assert cover.use_offset
        assert check_cover_exact(cover, fn, 3) == 1.0

    def test_parity_learned_exactly(self, rng):
        fn = lambda p: p[:, :5].sum(axis=1) % 2
        oracle = oracle_from_fn(fn, 8)
        cover = enumerate_small_function(oracle, 0, [0, 1, 2, 3, 4],
                                         fast_config())
        assert check_cover_exact(cover, fn, 8) == 1.0


class TestFbdt:
    def test_learns_conjunction_exactly(self, rng):
        fn = lambda p: p[:, 1] & p[:, 5] & p[:, 9]
        oracle = oracle_from_fn(fn, 12)
        cfg = fast_config(exhaustive_threshold=0)  # force the tree path
        cover = build_decision_tree(oracle, 0, [1, 5, 9], cfg, rng)
        assert check_cover_exact(cover, fn, 12) == 1.0
        assert not cover.stats.exhausted

    def test_learns_disjunction_exactly(self, rng):
        fn = lambda p: (p[:, 0] | p[:, 3]).astype(np.uint8)
        oracle = oracle_from_fn(fn, 6)
        cfg = fast_config(exhaustive_threshold=0)
        cover = build_decision_tree(oracle, 0, [0, 3], cfg, rng)
        assert check_cover_exact(cover, fn, 6) == 1.0

    def test_xor_tree_is_exact(self, rng):
        fn = lambda p: (p[:, 0] ^ p[:, 1] ^ p[:, 2]).astype(np.uint8)
        oracle = oracle_from_fn(fn, 4)
        cfg = fast_config(exhaustive_threshold=0)
        cover = build_decision_tree(oracle, 0, [0, 1, 2], cfg, rng)
        assert check_cover_exact(cover, fn, 4) == 1.0
        # Parity has no mergeable leaves: 4 onset + 4 offset paths.
        assert len(cover.onset) == 4
        assert len(cover.offset) == 4

    def test_most_significant_input_split_first(self, rng):
        """For f = a | (b & c), input a flips the output most often, so
        the root split must be on a — giving a onset leaf at depth 1."""
        fn = lambda p: (p[:, 0] | (p[:, 1] & p[:, 2])).astype(np.uint8)
        oracle = oracle_from_fn(fn, 3)
        cfg = fast_config(exhaustive_threshold=0, r_node=128,
                          leaf_samples=128)
        cover = build_decision_tree(oracle, 0, [0, 1, 2], cfg, rng)
        assert check_cover_exact(cover, fn, 3) == 1.0
        # One of the covers contains the bare cube {a=1}.
        cubes = list(cover.onset.cubes) + list(cover.offset.cubes)
        assert any(len(c) == 1 and c.phase(0) == 1 for c in cubes)

    def test_timeout_produces_partial_but_sane_cover(self, rng):
        fn = lambda p: p[:, :14].sum(axis=1) % 2  # worst case: parity
        oracle = oracle_from_fn(fn, 14)
        cfg = fast_config(exhaustive_threshold=0)
        cover = build_decision_tree(oracle, 0, list(range(14)), cfg, rng,
                                    deadline=time.monotonic() + 0.2)
        assert cover.stats.timed_out or cover.stats.nodes_expanded > 0
        acc = check_cover_exact(cover, fn, 14)
        assert 0.3 <= acc <= 1.0  # sane, defined everywhere

    def test_node_cap_respected(self, rng):
        fn = lambda p: p[:, :10].sum(axis=1) % 2
        oracle = oracle_from_fn(fn, 10)
        cfg = fast_config(exhaustive_threshold=0, max_tree_nodes=16)
        cover = build_decision_tree(oracle, 0, list(range(10)), cfg, rng)
        assert cover.stats.nodes_expanded <= 16

    def test_support_widening_on_underapproximation(self, rng):
        """If S' misses a variable, the tree discovers it on demand."""
        fn = lambda p: (p[:, 0] & p[:, 1]).astype(np.uint8)
        oracle = oracle_from_fn(fn, 4)
        cfg = fast_config(exhaustive_threshold=0, r_node=64,
                          leaf_samples=64)
        cover = build_decision_tree(oracle, 0, [0], cfg, rng)  # missing 1
        assert check_cover_exact(cover, fn, 4) == 1.0

    def test_onset_offset_covers_partition_space(self, rng):
        fn = lambda p: (p[:, 0] & ~p[:, 2] & 1).astype(np.uint8)
        oracle = oracle_from_fn(fn, 4)
        cfg = fast_config(exhaustive_threshold=0)
        cover = build_decision_tree(oracle, 0, [0, 2], cfg, rng)
        union = cover.onset.disjoin(cover.offset)
        assert union.is_one()


class TestSubtreeConquest:
    """Trick 1 extended into the tree (our extension beyond the paper)."""

    def test_exact_with_fewer_nodes(self, rng):
        fn = lambda p: ((p[:, 0] & p[:, 1]) ^ (p[:, 2] | p[:, 3])) \
            .astype(np.uint8)
        oracle = oracle_from_fn(fn, 6)
        base_cfg = fast_config(exhaustive_threshold=0,
                               subtree_exhaustive_threshold=0,
                               r_node=64, leaf_samples=96)
        sub_cfg = fast_config(exhaustive_threshold=0,
                              subtree_exhaustive_threshold=3,
                              r_node=64, leaf_samples=96)
        plain = build_decision_tree(oracle, 0, [0, 1, 2, 3], base_cfg,
                                    np.random.default_rng(1))
        conquered = build_decision_tree(oracle, 0, [0, 1, 2, 3], sub_cfg,
                                        np.random.default_rng(1))
        assert check_cover_exact(plain, fn, 6) == 1.0
        assert check_cover_exact(conquered, fn, 6) == 1.0
        assert (conquered.stats.nodes_expanded
                <= plain.stats.nodes_expanded)

    def test_validation_falls_back_on_missing_support(self, rng):
        """With S' = {0} but f = x0 & x1, the subtree probe must reject
        the tabulation and the widening path must still learn exactly."""
        fn = lambda p: (p[:, 0] & p[:, 1]).astype(np.uint8)
        oracle = oracle_from_fn(fn, 4)
        cfg = fast_config(exhaustive_threshold=0,
                          subtree_exhaustive_threshold=4,
                          r_node=64, leaf_samples=64)
        cover = build_decision_tree(oracle, 0, [0], cfg, rng)
        assert check_cover_exact(cover, fn, 4) == 1.0


class TestFig4Example:
    def test_fig4_example(self):
        """Example 3 / Fig. 4: F = !v!c!e | v!e!d | ve!c  (reading the
        resulting SOP of the worked example).  The FBDT must learn it
        exactly over the 5 variables v,c,d,e plus a spare."""
        # Variable order: v=0, c=1, d=2, e=3.
        def fn(p):
            v, c, d, e = (p[:, k].astype(bool) for k in range(4))
            return ((~v & ~c & ~e) | (v & ~e & ~d) | (v & e & ~c)) \
                .astype(np.uint8)
        oracle = oracle_from_fn(fn, 4)
        rng = np.random.default_rng(4)
        cfg = fast_config(exhaustive_threshold=0, r_node=64,
                          leaf_samples=96)
        cover = build_decision_tree(oracle, 0, [0, 1, 2, 3], cfg, rng)
        assert check_cover_exact(cover, fn, 4) == 1.0


class TestLearnOutput:
    def test_small_support_routes_to_exhaustive(self, rng):
        fn = lambda p: (p[:, 0] | p[:, 1]).astype(np.uint8)
        oracle = oracle_from_fn(fn, 5)
        cfg = fast_config(exhaustive_threshold=4)
        cover = learn_output(oracle, 0, [0, 1], cfg, rng)
        assert cover.stats.exhausted

    def test_large_support_routes_to_tree(self, rng):
        fn = lambda p: (p[:, :6].sum(axis=1) > 3).astype(np.uint8)
        oracle = oracle_from_fn(fn, 8)
        cfg = fast_config(exhaustive_threshold=2)
        cover = learn_output(oracle, 0, list(range(6)), cfg, rng)
        assert not cover.stats.exhausted
