"""Checkpoint/resume: durable per-output progress."""

import json
import logging
import os

import numpy as np
import pytest

from repro.core.config import RobustnessConfig, fast_config
from repro.core.fbdt import FbdtStats, LearnedCover
from repro.core.regressor import LogicRegressor
from repro.logic.cube import Cube
from repro.logic.sop import Sop
from repro.network.simulate import simulate
from repro.oracle.base import Oracle
from repro.oracle.eco import build_eco_netlist
from repro.oracle.netlist_oracle import NetlistOracle
from repro.robustness.checkpoint import (CheckpointEntry, CheckpointError,
                                         CheckpointStore, cover_from_json,
                                         cover_to_json)


def random_cover(rng, num_pis=10, cubes=5):
    def sop():
        out = []
        for _ in range(cubes):
            k = int(rng.integers(1, 4))
            variables = rng.choice(num_pis, size=k, replace=False)
            out.append(Cube({int(v): int(rng.integers(0, 2))
                             for v in variables}))
        return Sop(out, num_pis)

    stats = FbdtStats(nodes_expanded=7, onset_leaves=3, timed_out=True)
    return LearnedCover(sop(), sop(), use_offset=bool(rng.integers(2)),
                        stats=stats)


class TestCoverSerialization:
    def test_roundtrip_preserves_function_and_stats(self, rng):
        cover = random_cover(rng)
        restored = cover_from_json(
            json.loads(json.dumps(cover_to_json(cover))), num_pis=10)
        patterns = rng.integers(0, 2, size=(500, 10)).astype(np.uint8)
        assert restored.use_offset == cover.use_offset
        assert restored.evaluate(patterns).tolist() == \
            cover.evaluate(patterns).tolist()
        assert restored.onset.literal_count() == \
            cover.onset.literal_count()
        assert restored.stats == cover.stats

    def test_constant_covers_roundtrip(self):
        cover = LearnedCover(Sop.one(6), Sop.zero(6), use_offset=False)
        restored = cover_from_json(cover_to_json(cover), num_pis=6)
        patterns = np.zeros((4, 6), dtype=np.uint8)
        assert restored.evaluate(patterns).tolist() == [1, 1, 1, 1]


class TestStore:
    def entry(self, rng, j=0):
        return CheckpointEntry(po_index=j, po_name=f"po_{j}",
                               method="fbdt", detail="nodes=7",
                               support=[1, 4], cover=random_cover(rng))

    def test_record_and_reload(self, tmp_path, rng):
        path = str(tmp_path / "run.ckpt")
        pis = [f"a{i}" for i in range(10)]
        store = CheckpointStore(path)
        store.open_for(pis, ["po_0", "po_1"], seed=1, resume=False)
        store.record_output(self.entry(rng, 0))
        store.record_output(self.entry(rng, 1))
        assert store.completed == [0, 1]

        fresh = CheckpointStore(path)
        restored = fresh.open_for(pis, ["po_0", "po_1"], seed=1,
                                  resume=True)
        assert sorted(restored) == [0, 1]
        assert restored[1].method == "fbdt"
        assert restored[1].support == [1, 4]

    def test_open_without_resume_truncates(self, tmp_path, rng):
        path = str(tmp_path / "run.ckpt")
        store = CheckpointStore(path)
        store.open_for(["a"], ["po_0"], seed=1, resume=False)
        store.record_output(self.entry(rng))
        again = CheckpointStore(path)
        assert again.open_for(["a"], ["po_0"], seed=1, resume=False) == {}
        assert json.load(open(path))["outputs"] == []

    def test_fingerprint_mismatch_rejected(self, tmp_path, rng):
        path = str(tmp_path / "run.ckpt")
        store = CheckpointStore(path)
        store.open_for(["a"], ["po_0"], seed=1, resume=False)
        store.record_output(self.entry(rng))
        other = CheckpointStore(path)
        with pytest.raises(CheckpointError):
            other.open_for(["a"], ["po_0"], seed=2, resume=True)
        with pytest.raises(CheckpointError):
            other.open_for(["a", "b"], ["po_0"], seed=1, resume=True)

    def test_corrupt_file_restarts_fresh(self, tmp_path, caplog):
        # A truncated / garbage checkpoint is a disk fault, not a user
        # error: warn and restart instead of crashing the resume.
        path = str(tmp_path / "run.ckpt")
        with open(path, "w") as handle:
            handle.write("not json{")
        with caplog.at_level("WARNING"):
            restored = CheckpointStore(path).open_for(
                ["a"], ["p"], 1, resume=True)
        assert restored == {}
        assert any("unreadable" in rec.message for rec in caplog.records)

    def test_digest_tamper_restarts_fresh(self, tmp_path, rng, caplog):
        path = str(tmp_path / "run.ckpt")
        store = CheckpointStore(path)
        store.open_for(["a"], ["po_0"], seed=1, resume=False)
        store.record_output(self.entry(rng))
        data = json.load(open(path))
        data["fingerprint"]["seed"] = 2  # bit-rot without digest update
        with open(path, "w") as handle:
            json.dump(data, handle)
        with caplog.at_level("WARNING"):
            restored = CheckpointStore(path).open_for(
                ["a"], ["po_0"], seed=1, resume=True)
        assert restored == {}
        assert any("integrity" in rec.message for rec in caplog.records)

    def test_corrupt_entry_skipped_others_restored(self, tmp_path, rng,
                                                   caplog):
        from repro.robustness.checkpoint import payload_digest

        path = str(tmp_path / "run.ckpt")
        pis = [f"a{i}" for i in range(10)]
        store = CheckpointStore(path)
        store.open_for(pis, ["po_0", "po_1"], seed=1, resume=False)
        store.record_output(self.entry(rng, 0))
        store.record_output(self.entry(rng, 1))
        data = json.load(open(path))
        data["outputs"][0]["method"] = "tampered"  # entry digest now stale
        data.pop("digest")
        data["digest"] = payload_digest(data)  # file digest re-stamped
        with open(path, "w") as handle:
            json.dump(data, handle)
        with caplog.at_level("WARNING"):
            restored = CheckpointStore(path).open_for(
                pis, ["po_0", "po_1"], seed=1, resume=True)
        assert sorted(restored) == [1]
        assert any("re-learned" in rec.message for rec in caplog.records)

    def test_file_carries_digests(self, tmp_path, rng):
        path = str(tmp_path / "run.ckpt")
        store = CheckpointStore(path)
        store.open_for(["a"], ["po_0"], seed=1, resume=False)
        store.record_output(self.entry(rng))
        data = json.load(open(path))
        assert "digest" in data
        assert all("digest" in item for item in data["outputs"])

    def test_unopened_store_refuses_records(self, tmp_path, rng):
        store = CheckpointStore(str(tmp_path / "run.ckpt"))
        with pytest.raises(CheckpointError):
            store.record_output(self.entry(rng))

    def test_config_requires_path_for_resume(self):
        with pytest.raises(ValueError):
            RobustnessConfig(resume=True).validate()


class TestTornWriteSweep:
    """Byte-exhaustive corruption: always degrade-to-relearn.

    The checkpoint's recovery contract is that *any* torn or bit-rotted
    file restores a (possibly empty) subset of the recorded outputs and
    never raises, never restores an entry that differs from what was
    written — the worst legal outcome is re-learning an output.  Sweep
    the whole file: truncate after every byte, then flip one bit in
    every byte.
    """

    PIS = [f"a{i}" for i in range(10)]
    POS = ["po_0", "po_1"]

    def _baseline(self, tmp_path, rng):
        path = str(tmp_path / "run.ckpt")
        store = CheckpointStore(path)
        store.open_for(self.PIS, self.POS, seed=1, resume=False)
        reference = {}
        for j in range(2):
            entry = CheckpointEntry(
                po_index=j, po_name=f"po_{j}", method="fbdt",
                detail="nodes=7", support=[1, 4],
                cover=random_cover(rng))
            store.record_output(entry)
            reference[j] = entry.to_json()
        return path, reference

    def _assert_degrades(self, path, reference):
        restored = CheckpointStore(path).open_for(
            self.PIS, self.POS, seed=1, resume=True)
        for j, entry in restored.items():
            assert entry.to_json() == reference[j], \
                f"corrupted file restored a diverged entry for {j}"

    def test_truncation_at_every_byte(self, tmp_path, rng):
        path, reference = self._baseline(tmp_path, rng)
        blob = open(path, "rb").read()
        logging.disable(logging.WARNING)  # sweep logs thousands of warns
        try:
            for cut in range(len(blob) + 1):
                with open(path, "wb") as handle:
                    handle.write(blob[:cut])
                self._assert_degrades(path, reference)
        finally:
            logging.disable(logging.NOTSET)

    def test_bit_flip_at_every_byte(self, tmp_path, rng):
        path, reference = self._baseline(tmp_path, rng)
        blob = bytearray(open(path, "rb").read())
        logging.disable(logging.WARNING)
        try:
            for pos in range(len(blob)):
                flipped = bytearray(blob)
                flipped[pos] ^= 0x01
                with open(path, "wb") as handle:
                    handle.write(flipped)
                self._assert_degrades(path, reference)
        finally:
            logging.disable(logging.NOTSET)

    def test_intact_file_restores_everything(self, tmp_path, rng):
        # The sweep's control arm: zero corruption restores both.
        path, reference = self._baseline(tmp_path, rng)
        restored = CheckpointStore(path).open_for(
            self.PIS, self.POS, seed=1, resume=True)
        assert {j: e.to_json() for j, e in restored.items()} \
            == reference


class SimulatedKill(BaseException):
    """Process death: a BaseException so no isolation boundary eats it."""


class KillingOracle(Oracle):
    """Answers like ``inner`` until ``kill_after`` rows, then dies."""

    def __init__(self, inner, kill_after):
        super().__init__(inner.pi_names, inner.po_names)
        self._inner = inner
        self._kill_after = kill_after

    def _evaluate(self, patterns):
        if self._inner.query_count >= self._kill_after:
            raise SimulatedKill()
        return self._inner.query(patterns)


class TestResume:
    def test_kill_and_resume_matches_uninterrupted_run(self, tmp_path):
        golden = build_eco_netlist(18, 4, seed=9, support_low=3,
                                   support_high=6)
        path = str(tmp_path / "run.ckpt")
        cfg = fast_config(time_limit=30.0)

        reference = LogicRegressor(cfg).learn(NetlistOracle(golden))

        # kill_after must land between the first and last per-output
        # checkpoint; the sample bank cut total row volume, so the
        # threshold sits lower than it did pre-bank.
        with pytest.raises(SimulatedKill):
            LogicRegressor(cfg).learn(
                KillingOracle(NetlistOracle(golden), kill_after=3000),
                checkpoint=path)
        completed = [o["po_index"]
                     for o in json.load(open(path))["outputs"]]
        assert completed, "the kill landed before any output finished"
        assert len(completed) < golden.num_pos, "the kill landed too late"

        resumed = LogicRegressor(cfg).learn(
            NetlistOracle(golden), checkpoint=path, resume=True)
        methods = {r.po_index: r for r in resumed.reports}
        patterns = np.random.default_rng(3).integers(
            0, 2, size=(2000, 18)).astype(np.uint8)
        ours = simulate(resumed.netlist, patterns)
        ref = simulate(reference.netlist, patterns)
        for j in completed:
            assert methods[j].detail.startswith("resumed")
            assert (ours[:, j] == ref[:, j]).all(), \
                f"restored output {j} diverged from uninterrupted run"

    def test_uninterrupted_checkpoint_run_matches_plain_run(
            self, tmp_path):
        golden = build_eco_netlist(14, 3, seed=4, support_low=3,
                                   support_high=5)
        cfg = fast_config(time_limit=20.0)
        plain = LogicRegressor(cfg).learn(NetlistOracle(golden))
        path = str(tmp_path / "run.ckpt")
        with_ckpt = LogicRegressor(cfg).learn(NetlistOracle(golden),
                                              checkpoint=path)
        patterns = np.random.default_rng(8).integers(
            0, 2, size=(2000, 14)).astype(np.uint8)
        assert simulate(plain.netlist, patterns).tolist() == \
            simulate(with_ckpt.netlist, patterns).tolist()
        assert os.path.exists(path)

    def test_resume_skips_restored_outputs_queries(self, tmp_path):
        golden = build_eco_netlist(14, 3, seed=4, support_low=3,
                                   support_high=5)
        cfg = fast_config(time_limit=20.0)
        path = str(tmp_path / "run.ckpt")
        full = LogicRegressor(cfg).learn(NetlistOracle(golden),
                                         checkpoint=path)
        resumed = LogicRegressor(cfg).learn(NetlistOracle(golden),
                                            checkpoint=path, resume=True)
        # Everything was restored: only validation-free bookkeeping and
        # no per-output learning remains, so far fewer queries are spent.
        assert resumed.queries < full.queries
        assert all(r.detail.startswith("resumed")
                   for r in resumed.reports)
