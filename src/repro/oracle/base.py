"""The black-box oracle interface (the contest's IO-generator contract).

Per the problem statement (Sec. III) the generator 1) hides a completely
specified Boolean function and 2) maps full input assignments to full
output assignments — no partial queries, no structure, only names.  The
:class:`Oracle` base class enforces exactly that contract and meters the
number of queries so experiments can report sampling effort.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.obs.context import on_oracle_rows


class QueryBudgetExceeded(RuntimeError):
    """Raised when an oracle's query budget is exhausted."""


class OracleFault(RuntimeError):
    """Base class for recoverable oracle failures.

    The execution layer (``repro.robustness``) distinguishes faults —
    which a retry may cure — from contract violations (``ValueError`` /
    ``AssertionError``), which never recover.
    """


class TransientOracleFault(OracleFault):
    """A momentary failure: the same query may succeed if re-asked."""


class OracleTimeout(OracleFault):
    """A single query exceeded its per-query deadline."""


class Oracle(abc.ABC):
    """A black-box input-output relation generator.

    Subclasses implement :meth:`_evaluate`; users call :meth:`query`, which
    validates shapes (full assignments only), counts queries and enforces
    an optional budget.
    """

    obs_layer = "oracle"
    """Layer label used by the observability context to attribute
    served rows per wrapper (overridden by BankedOracle, RetryingOracle,
    FaultyOracle, ...); see ``docs/OBSERVABILITY.md``."""

    def __init__(self, pi_names: Sequence[str], po_names: Sequence[str],
                 query_budget: Optional[int] = None):
        self._pi_names = list(pi_names)
        self._po_names = list(po_names)
        self._query_count = 0
        self._call_count = 0
        self._budget = query_budget

    # -- public contract -----------------------------------------------------

    @property
    def pi_names(self) -> List[str]:
        """Names of the primary inputs (the only structural hint given)."""
        return list(self._pi_names)

    @property
    def po_names(self) -> List[str]:
        return list(self._po_names)

    @property
    def num_pis(self) -> int:
        return len(self._pi_names)

    @property
    def num_pos(self) -> int:
        return len(self._po_names)

    @property
    def query_count(self) -> int:
        """Total full-assignment queries served so far."""
        return self._query_count

    @property
    def query_calls(self) -> int:
        """Number of ``query`` invocations served (batches, not rows)."""
        return self._call_count

    def reset_query_count(self) -> None:
        self._query_count = 0
        self._call_count = 0

    def query(self, patterns: np.ndarray, *,
              validate: bool = True) -> np.ndarray:
        """Evaluate a batch of full assignments.

        ``patterns`` is an ``(N, num_pis)`` 0/1 array; the result is the
        ``(N, num_pos)`` array of output assignments.

        ``validate=False`` is the fast path for *internally generated*
        patterns: arrays the sampling layer built itself and already
        guarantees to be contiguous uint8 0/1.  It skips the dtype
        coercion and the full-array 0/1 scan that dominate small-batch
        overhead; external callers must keep validation on.
        """
        if validate:
            patterns = np.asarray(patterns, dtype=np.uint8)
            if patterns.ndim != 2 or patterns.shape[1] != self.num_pis:
                raise ValueError(
                    f"full assignments required: expected "
                    f"(N, {self.num_pis}), got {patterns.shape}")
            if patterns.size and patterns.max() > 1:
                raise ValueError("patterns must be 0/1 valued")
        elif patterns.ndim != 2 or patterns.shape[1] != self.num_pis:
            raise ValueError(
                f"full assignments required: expected (N, {self.num_pis}), "
                f"got {patterns.shape}")
        if self._budget is not None \
                and self._query_count + patterns.shape[0] > self._budget:
            raise QueryBudgetExceeded(
                f"budget of {self._budget} queries exhausted")
        out = self._evaluate(patterns)
        out = np.asarray(out, dtype=np.uint8)
        if out.shape != (patterns.shape[0], self.num_pos):
            # A wrong-shape response (duplicated / truncated rows, extra
            # columns) is a *generator output* problem, not a caller
            # contract violation: classify it as a transient fault so the
            # retry layer can re-ask instead of the run dying on an
            # assertion.  No rows are billed for a malformed response.
            raise TransientOracleFault(
                f"malformed oracle response: expected "
                f"({patterns.shape[0]}, {self.num_pos}), got {out.shape}")
        # Bill only answers actually delivered: a raising oracle must not
        # consume budget, or every retry would double-bill the caller.
        self._query_count += patterns.shape[0]
        self._call_count += 1
        on_oracle_rows(self, patterns.shape[0])
        return out

    def query_one(self, assignment: Sequence[int]) -> List[int]:
        """Evaluate a single full assignment."""
        arr = np.asarray(assignment, dtype=np.uint8).reshape(1, -1)
        return self.query(arr)[0].tolist()

    # -- implementation hook --------------------------------------------------

    @abc.abstractmethod
    def _evaluate(self, patterns: np.ndarray) -> np.ndarray:
        """Compute the hidden function on validated patterns."""
