"""End-to-end observability: jobs-invariance, determinism, opt-out."""

import json

import pytest

from repro.core.config import ObsConfig, RobustnessConfig, fast_config
from repro.core.regressor import LogicRegressor
from repro.oracle.eco import build_eco_netlist
from repro.oracle.netlist_oracle import NetlistOracle


def _learn(jobs, *, retries=0, seed=7):
    oracle = NetlistOracle(build_eco_netlist(8, 4, seed=5))
    cfg = fast_config(
        time_limit=30.0, jobs=jobs, seed=seed,
        enable_optimization=False,
        robustness=RobustnessConfig(max_retries=retries))
    return LogicRegressor(cfg).learn(oracle), oracle


def _metrics_json(result):
    return json.dumps(result.instrumentation.metrics.to_dict(),
                      sort_keys=True)


def _trace_shape(result):
    """Trace records minus timestamps: the determinism contract."""
    return [{k: v for k, v in rec.items() if k not in ("ts", "dur")}
            for rec in result.instrumentation.tracer.to_records()]


class TestJobsInvariance:
    """--jobs N must not change aggregates (the satellite regression)."""

    @pytest.mark.parametrize("retries", [0, 2])
    def test_jobs1_vs_jobs4_identical_aggregates(self, retries):
        seq, _ = _learn(1, retries=retries)
        par, _ = _learn(4, retries=retries)
        assert seq.queries == par.queries
        assert seq.gate_count == par.gate_count
        # The caller's oracle object misses worker-shard rows under
        # --jobs N; ``result.queries`` (and the billed counter) is the
        # single source of truth and must match across modes.
        assert _metrics_json(seq) == _metrics_json(par)
        if seq.bank_stats is not None:
            assert vars(seq.bank_stats) == vars(par.bank_stats)

    def test_jobs1_vs_jobs4_per_output_stats_survive(self):
        seq, _ = _learn(1)
        par, _ = _learn(4)
        seq_stats = {r.po_index: (r.method, r.support_size)
                     for r in seq.reports}
        par_stats = {r.po_index: (r.method, r.support_size)
                     for r in par.reports}
        assert seq_stats == par_stats

    def test_step_trace_differs_only_by_parallel_line(self):
        seq, _ = _learn(1)
        par, _ = _learn(4)
        extra = [line for line in par.step_trace
                 if line not in seq.step_trace]
        assert all(line.startswith("parallel: ") for line in extra)
        assert [line for line in seq.step_trace
                if not line.startswith("parallel: ")] == \
            [line for line in par.step_trace
             if not line.startswith("parallel: ")]


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        one, _ = _learn(1)
        two, _ = _learn(1)
        assert _metrics_json(one) == _metrics_json(two)
        assert _trace_shape(one) == _trace_shape(two)

    def test_different_seeds_still_account_fully(self):
        for seed in (7, 8):
            result, oracle = _learn(1, seed=seed)
            billed = result.instrumentation.metrics.counter(
                "oracle.rows_billed")
            assert billed.total() == oracle.query_count == result.queries

    def test_parallel_billed_counter_matches_result_queries(self):
        result, _ = _learn(4)
        billed = result.instrumentation.metrics.counter(
            "oracle.rows_billed")
        assert billed.total() == result.queries


class TestAttribution:
    def test_billed_rows_sum_to_oracle_total(self):
        result, _ = _learn(2)
        billed = result.instrumentation.metrics.counter(
            "oracle.rows_billed")
        assert billed.total() == result.queries
        by_stage = billed.by("stage")
        assert sum(by_stage.values()) == result.queries
        # Nothing may escape stage attribution.
        assert "-" not in by_stage

    def test_stage_spans_nest_under_run(self):
        result, _ = _learn(1)
        records = result.instrumentation.tracer.to_records()
        runs = [r for r in records if r["type"] == "span"
                and r["name"] == "run" and r["parent"] is None]
        assert len(runs) == 1
        stage_names = {r["name"] for r in records
                       if r["type"] == "span"
                       and r.get("attrs", {}).get("kind") == "stage"
                       and r["parent"] == runs[0]["id"]}
        assert "learn" in stage_names
        assert "support" in stage_names

    def test_output_spans_present_per_learned_output(self):
        result, oracle = _learn(1)
        records = result.instrumentation.tracer.to_records()
        outputs = {r["attrs"]["output"] for r in records
                   if r["type"] == "span" and r["name"] == "output"}
        learned = {rep.po_index for rep in result.reports
                   if rep.method not in ("degraded",)}
        assert outputs >= learned - {  # template outputs skip step 4
            rep.po_index for rep in result.reports
            if "template" in rep.method or rep.method == "shared"}


class TestOptOut:
    def test_disabled_observability_yields_no_instrumentation(self):
        oracle = NetlistOracle(build_eco_netlist(8, 4, seed=5))
        cfg = fast_config(time_limit=30.0, enable_optimization=False,
                          observability=ObsConfig(enabled=False))
        result = LogicRegressor(cfg).learn(oracle)
        assert result.instrumentation is None
        assert result.netlist.num_pos == 4
        assert result.step_trace  # the rendered view still works

    def test_disabled_matches_enabled_circuit(self):
        on, _ = _learn(1)
        oracle = NetlistOracle(build_eco_netlist(8, 4, seed=5))
        cfg = fast_config(time_limit=30.0, jobs=1, seed=7,
                          enable_optimization=False,
                          robustness=RobustnessConfig(max_retries=0),
                          observability=ObsConfig(enabled=False))
        off = LogicRegressor(cfg).learn(oracle)
        assert off.gate_count == on.gate_count
        assert off.queries == on.queries
