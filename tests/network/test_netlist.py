"""Unit tests for the netlist data structure."""

import numpy as np
import pytest

from repro.network.netlist import Gate, GateOp, Netlist
from repro.network.simulate import simulate


def small_net():
    net = Netlist("t")
    a = net.add_pi("a")
    b = net.add_pi("b")
    c = net.add_pi("c")
    x = net.add_xor(a, b)
    y = net.add_and(x, c)
    net.add_po("y", y)
    return net


class TestConstruction:
    def test_pi_registration(self):
        net = Netlist()
        a = net.add_pi("a")
        assert net.pi_names == ["a"]
        assert net.pi_node("a") == a
        assert net.pi_index_of_node(a) == 0

    def test_duplicate_pi_rejected(self):
        net = Netlist()
        net.add_pi("a")
        with pytest.raises(ValueError):
            net.add_pi("a")

    def test_gate_arity_checked(self):
        with pytest.raises(ValueError):
            Gate(GateOp.AND, (0,))
        with pytest.raises(ValueError):
            Gate(GateOp.NOT, (0, 1))

    def test_dangling_fanin_rejected(self):
        net = Netlist()
        net.add_pi("a")
        with pytest.raises(ValueError):
            net.add_gate(GateOp.NOT, 5)

    def test_po_must_exist(self):
        net = Netlist()
        with pytest.raises(ValueError):
            net.add_po("o", 0)

    def test_const1(self):
        net = Netlist()
        one = net.add_const1()
        net.add_po("o", one)
        # No PIs: simulate with empty pattern columns.
        out = simulate(net, np.zeros((4, 0), dtype=np.uint8))
        assert (out[:, 0] == 1).all()


class TestMetrics:
    def test_gate_count_ignores_inverters(self):
        net = Netlist()
        a = net.add_pi("a")
        n = net.add_not(a)
        g = net.add_and(n, a)
        net.add_po("o", g)
        assert net.gate_count() == 1

    def test_gate_count_ignores_dangling(self):
        net = small_net()
        net.add_and(0, 1)  # dangling gate, unreachable from POs
        assert net.gate_count() == 2

    def test_level(self):
        net = small_net()
        assert net.level() == 2

    def test_level_not_free(self):
        net = Netlist()
        a = net.add_pi("a")
        n1 = net.add_not(a)
        n2 = net.add_not(n1)
        net.add_po("o", n2)
        assert net.level() == 0

    def test_fanouts(self):
        net = small_net()
        fanouts = net.fanouts()
        assert fanouts[0] == [3]  # a feeds the xor
        assert fanouts[3] == [4]  # xor feeds the and


class TestStructure:
    def test_structural_support(self):
        net = Netlist()
        a = net.add_pi("a")
        b = net.add_pi("b")
        net.add_pi("c")
        net.add_po("o", net.add_or(a, b))
        assert net.structural_support(0) == ["a", "b"]

    def test_cone_extraction_keeps_universe(self):
        net = small_net()
        net.add_po("z", net.pi_node("a"))
        cone = net.cone_of(1)
        assert cone.num_pis == 3  # same input universe
        assert cone.num_pos == 1
        pats = np.random.default_rng(0).integers(
            0, 2, (50, 3)).astype(np.uint8)
        assert (simulate(cone, pats)[:, 0] == pats[:, 0]).all()

    def test_cleaned_removes_dead_logic(self):
        net = small_net()
        net.add_xor(0, 1)
        net.add_and(0, 2)
        cleaned = net.cleaned()
        assert len(cleaned) < len(net)
        pats = np.random.default_rng(1).integers(
            0, 2, (64, 3)).astype(np.uint8)
        assert (simulate(cleaned, pats) == simulate(net, pats)).all()

    def test_append_netlist(self):
        inner = Netlist("inner")
        x = inner.add_pi("x")
        y = inner.add_pi("y")
        inner.add_po("f", inner.add_and(x, y))
        outer = Netlist("outer")
        a = outer.add_pi("a")
        b = outer.add_pi("b")
        out_map = outer.append_netlist(inner, {"x": a, "y": b})
        outer.add_po("f", out_map["f"])
        pats = np.random.default_rng(2).integers(
            0, 2, (32, 2)).astype(np.uint8)
        assert (simulate(outer, pats)[:, 0]
                == (pats[:, 0] & pats[:, 1])).all()

    def test_append_netlist_unmapped_input_rejected(self):
        inner = Netlist("inner")
        inner.add_pi("x")
        inner.add_po("f", 0)
        outer = Netlist("outer")
        with pytest.raises(ValueError):
            outer.append_netlist(inner, {})

    def test_repr(self):
        assert "2 gates" in repr(small_net()).replace("gates)", "gates)")
