"""Extended template families (the paper's stated future work).

Sec. VI: "we would like to enhance the robustness of our tool by
generalizing the variable grouping and template matching methods."  These
matchers generalize Table I with three more word-level families:

- **MUX**: ``N_z = sel ? N_a : N_b`` for a scalar select input;
- **bitwise**: ``z_i = a_i op b_i`` for a 2-input gate op applied lanewise;
- **wiring**: every output bit is an input bit, its negation, or a
  constant (subsumes shifts, rotations, bit-reversals and re-bundling).

All hypotheses are formed from controlled probes and accepted only after
randomized verification over the full input space, exactly like the
original families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.grouping import BusGroup, Grouping
from repro.core.sampling import random_patterns
from repro.network.netlist import GateOp, Netlist
from repro.oracle.base import Oracle

_BITWISE_OPS: Dict[str, GateOp] = {
    "and": GateOp.AND,
    "or": GateOp.OR,
    "xor": GateOp.XOR,
    "nand": GateOp.NAND,
    "nor": GateOp.NOR,
    "xnor": GateOp.XNOR,
}

_BITWISE_FN = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nand": lambda a, b: 1 - (a & b),
    "nor": lambda a, b: 1 - (a | b),
    "xnor": lambda a, b: 1 - (a ^ b),
}


@dataclass(frozen=True)
class MuxMatch:
    """``N_z = sel ? N_when1 : N_when0`` (lanewise, widths must agree)."""

    out_bus: BusGroup
    select_pos: int  # PI position of the select scalar
    when1: BusGroup
    when0: BusGroup

    def describe(self) -> str:
        return (f"N_{self.out_bus.stem} = sel ? N_{self.when1.stem} "
                f": N_{self.when0.stem}")

    def build(self, net: Netlist, pi_nodes: Sequence[int]) -> Dict[int, int]:
        from repro.network.builder import mux

        out: Dict[int, int] = {}
        sel = pi_nodes[self.select_pos]
        for k, po_pos in enumerate(self.out_bus.positions):
            a = pi_nodes[self.when1.positions[k]]
            b = pi_nodes[self.when0.positions[k]]
            out[po_pos] = mux(net, sel, when0=b, when1=a)
        return out


@dataclass(frozen=True)
class BitwiseMatch:
    """``z_i = left_i op right_i`` for every lane i."""

    out_bus: BusGroup
    op: str
    left: BusGroup
    right: BusGroup

    def describe(self) -> str:
        return (f"{self.out_bus.stem}[i] = {self.left.stem}[i] "
                f"{self.op} {self.right.stem}[i]")

    def build(self, net: Netlist, pi_nodes: Sequence[int]) -> Dict[int, int]:
        out: Dict[int, int] = {}
        gate_op = _BITWISE_OPS[self.op]
        for k, po_pos in enumerate(self.out_bus.positions):
            a = pi_nodes[self.left.positions[k]]
            b = pi_nodes[self.right.positions[k]]
            out[po_pos] = net.add_gate(gate_op, a, b)
        return out


@dataclass(frozen=True)
class WiringMatch:
    """Each output bit is an input bit (either phase) or a constant.

    ``sources[k]`` describes output lane k: ``("pi", position, phase)``
    or ``("const", value)``.
    """

    out_bus: BusGroup
    sources: Tuple[Tuple, ...]

    def describe(self) -> str:
        parts = []
        for k, src in enumerate(self.sources[:4]):
            if src[0] == "const":
                parts.append(f"z[{k}]={src[1]}")
            else:
                parts.append(f"z[{k}]={'!' if not src[2] else ''}pi{src[1]}")
        suffix = "..." if len(self.sources) > 4 else ""
        return f"wiring {self.out_bus.stem}: " + ",".join(parts) + suffix

    def build(self, net: Netlist, pi_nodes: Sequence[int]) -> Dict[int, int]:
        out: Dict[int, int] = {}
        const0 = None
        const1 = None
        for k, po_pos in enumerate(self.out_bus.positions):
            src = self.sources[k]
            if src[0] == "const":
                if src[1]:
                    if const1 is None:
                        const1 = net.add_const1()
                    out[po_pos] = const1
                else:
                    if const0 is None:
                        const0 = net.add_const0()
                    out[po_pos] = const0
            else:
                _, position, phase = src
                node = pi_nodes[position]
                out[po_pos] = node if phase else net.add_not(node)
        return out


def match_mux(oracle: Oracle, pi_grouping: Grouping, out_bus: BusGroup,
              rng: np.random.Generator,
              num_samples: int = 128) -> Optional[MuxMatch]:
    """Hypothesize and verify the word-level MUX family."""
    buses = [b for b in pi_grouping.buses if b.width == out_bus.width]
    if len(buses) < 2 or not pi_grouping.scalars:
        return None
    samples = random_patterns(num_samples, oracle.num_pis, rng, (0.5,))
    for sel_pos in pi_grouping.scalars:
        forced1 = samples.copy()
        forced1[:, sel_pos] = 1
        forced0 = samples.copy()
        forced0[:, sel_pos] = 0
        out1 = oracle.query(forced1)
        out0 = oracle.query(forced0)
        z1 = out_bus.decode_batch(out1)
        z0 = out_bus.decode_batch(out0)
        when1 = _bus_equal_to(buses, forced1, z1)
        when0 = _bus_equal_to(buses, forced0, z0)
        if when1 is None or when0 is None or when1 is when0:
            continue
        match = MuxMatch(out_bus, sel_pos, when1, when0)
        if _verify_mux(oracle, match, rng, num_samples):
            return match
    return None


def _bus_equal_to(buses: List[BusGroup], patterns: np.ndarray,
                  values: np.ndarray) -> Optional[BusGroup]:
    for bus in buses:
        if np.array_equal(bus.decode_batch(patterns), values):
            return bus
    return None


def _verify_mux(oracle: Oracle, match: MuxMatch, rng: np.random.Generator,
                num_samples: int) -> bool:
    samples = random_patterns(num_samples, oracle.num_pis, rng,
                              (0.5, 0.2, 0.8))
    out = oracle.query(samples)
    z = match.out_bus.decode_batch(out)
    a = match.when1.decode_batch(samples)
    b = match.when0.decode_batch(samples)
    sel = samples[:, match.select_pos].astype(bool)
    return bool(np.array_equal(z, np.where(sel, a, b)))


def match_bitwise(oracle: Oracle, pi_grouping: Grouping,
                  out_bus: BusGroup, rng: np.random.Generator,
                  num_samples: int = 128) -> Optional[BitwiseMatch]:
    """Hypothesize and verify the lanewise 2-input gate family."""
    buses = [b for b in pi_grouping.buses if b.width >= out_bus.width]
    if len(buses) < 2:
        return None
    samples = random_patterns(num_samples, oracle.num_pis, rng,
                              (0.5, 0.25, 0.75))
    out = oracle.query(samples)
    for i, left in enumerate(buses):
        for right in buses[i + 1:]:
            for op, fn in _BITWISE_FN.items():
                ok = True
                for k, po_pos in enumerate(out_bus.positions):
                    a = samples[:, left.positions[k]].astype(np.int16)
                    b = samples[:, right.positions[k]].astype(np.int16)
                    if not np.array_equal(fn(a, b).astype(np.uint8),
                                          out[:, po_pos]):
                        ok = False
                        break
                if ok:
                    return BitwiseMatch(out_bus, op, left, right)
    return None


def match_wiring(oracle: Oracle, out_bus: BusGroup,
                 rng: np.random.Generator,
                 num_samples: int = 160) -> Optional[WiringMatch]:
    """Hypothesize and verify pure-wiring outputs (shift/rotate/rewire).

    With 160 random samples the chance of a spurious bit-correspondence
    is ~2^-160 per pair, so sampling equality is effectively proof.
    """
    samples = random_patterns(num_samples, oracle.num_pis, rng,
                              (0.5, 0.3, 0.7))
    out = oracle.query(samples)
    sources: List[Tuple] = []
    for k, po_pos in enumerate(out_bus.positions):
        column = out[:, po_pos]
        if not column.any():
            sources.append(("const", 0))
            continue
        if column.all():
            sources.append(("const", 1))
            continue
        found = None
        for pi in range(oracle.num_pis):
            if np.array_equal(samples[:, pi], column):
                found = ("pi", pi, 1)
                break
            if np.array_equal(samples[:, pi] ^ 1, column):
                found = ("pi", pi, 0)
                break
        if found is None:
            return None
        sources.append(found)
    return WiringMatch(out_bus, tuple(sources))
