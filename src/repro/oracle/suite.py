"""The 20-case contest benchmark suite (mirrors Table II).

Each case reproduces the corresponding Table II row's category and PI/PO
counts with a seeded synthetic circuit; difficulty knobs (support widths,
cone sizes, XOR-heaviness) are set so the qualitative behaviour matches the
paper: DIAG/DATA fall to template matching, easy ECO/NEQ are learned
exactly, and the cases nobody solved at the contest (case_9) or that
resisted learning (case_14, case_18) remain hard.

``paper_*`` fields carry the "Ours" column of Table II for paper-vs-measured
reporting; ``None`` mirrors the "-" entries (no result within the limit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.network.netlist import Netlist
from repro.oracle.data import build_data_netlist
from repro.oracle.diag import build_diag_netlist
from repro.oracle.eco import build_eco_netlist
from repro.oracle.neq import build_neq_netlist
from repro.oracle.netlist_oracle import NetlistOracle


@dataclass
class ContestCase:
    """One benchmark case: metadata, golden circuit, paper reference row."""

    case_id: str
    category: str  # NEQ | ECO | DIAG | DATA
    num_pis: int
    num_pos: int
    hidden: bool  # Table II "*" rows (hidden cases of the contest)
    golden: Netlist
    paper_size: Optional[int]
    paper_accuracy: Optional[float]
    paper_time: Optional[int]

    def oracle(self, query_budget: Optional[int] = None) -> NetlistOracle:
        """A fresh black-box view of the golden circuit."""
        return NetlistOracle(self.golden, query_budget=query_budget)

    def __repr__(self) -> str:
        return (f"ContestCase({self.case_id}, {self.category}, "
                f"{self.num_pis} PIs, {self.num_pos} POs)")


_SEED_BASE = 20190000


def _eco(case_num: int, num_pis: int, num_pos: int, low: int, high: int,
         gates: int) -> Netlist:
    return build_eco_netlist(num_pis, num_pos, _SEED_BASE + case_num,
                             support_low=low, support_high=high,
                             gates_per_output=gates)


def _neq(case_num: int, num_pis: int, num_pos: int, low: int, high: int,
         gates: int, mutations: int, xor_heavy: bool) -> Netlist:
    return build_neq_netlist(num_pis, num_pos, _SEED_BASE + case_num,
                             support_low=low, support_high=high,
                             gates_per_cone=gates, mutations=mutations,
                             xor_heavy=xor_heavy)


def _diag(case_num: int, num_pos: int, width: int, buses: int,
          extra: int, buried: float = 0.0) -> Netlist:
    net, _ = build_diag_netlist(num_pos, _SEED_BASE + case_num,
                                bus_width=width, num_buses=buses,
                                extra_pis=extra, buried_fraction=buried)
    return net


def _data(case_num: int, buses: int, in_width: int, out_width: int,
          extra: int) -> Netlist:
    net, _ = build_data_netlist(_SEED_BASE + case_num,
                                num_in_buses=buses, in_width=in_width,
                                out_width=out_width, num_out_buses=1,
                                extra_pis=extra)
    return net


# Per-case builders.  PI/PO counts follow Table II; difficulty parameters
# are scaled to the paper's observed outcomes for the "Ours" column.
_BUILDERS: Dict[str, Callable[[], Netlist]] = {
    "case_1": lambda: _eco(1, 121, 38, 3, 9, 10),
    "case_2": lambda: _data(2, 2, 24, 19, 5),
    "case_3": lambda: _diag(3, 1, 32, 2, 8),
    "case_4": lambda: _eco(4, 56, 5, 8, 14, 25),
    "case_5": lambda: _neq(5, 87, 16, 10, 18, 22, 2, False),
    "case_6": lambda: _diag(6, 1, 32, 2, 12),
    "case_7": lambda: _eco(7, 43, 7, 3, 7, 8),
    "case_8": lambda: _diag(8, 5, 16, 2, 12),
    "case_9": lambda: _eco(9, 173, 16, 18, 30, 60),
    "case_10": lambda: _neq(10, 37, 2, 4, 8, 10, 1, False),
    "case_11": lambda: _neq(11, 60, 20, 10, 16, 20, 2, False),
    "case_12": lambda: _data(12, 2, 16, 26, 8),
    "case_13": lambda: _eco(13, 43, 7, 3, 7, 8),
    "case_14": lambda: _neq(14, 50, 22, 20, 28, 40, 3, True),
    "case_15": lambda: _diag(15, 3, 36, 2, 8),
    "case_16": lambda: _diag(16, 4, 8, 2, 10),
    "case_17": lambda: _eco(17, 76, 33, 6, 14, 16),
    "case_18": lambda: _neq(18, 102, 2, 24, 34, 60, 3, True),
    "case_19": lambda: _eco(19, 73, 8, 8, 16, 20),
    "case_20": lambda: _diag(20, 2, 20, 2, 11),
}

# (category, #PI, #PO, hidden, ours-size, ours-accuracy, ours-time).
_TABLE2: Dict[str, tuple] = {
    "case_1": ("ECO", 121, 38, False, 165, 100.000, 35),
    "case_2": ("DATA", 53, 19, False, 186, 100.000, 11),
    "case_3": ("DIAG", 72, 1, False, 71, 100.000, 14),
    "case_4": ("ECO", 56, 5, False, 173, 100.000, 229),
    "case_5": ("NEQ", 87, 16, False, 1436, 99.833, 2578),
    "case_6": ("DIAG", 76, 1, False, 93, 100.000, 16),
    "case_7": ("ECO", 43, 7, False, 40, 100.000, 5),
    "case_8": ("DIAG", 44, 5, False, 63, 100.000, 7),
    "case_9": ("ECO", 173, 16, False, None, None, None),
    "case_10": ("NEQ", 37, 2, False, 23, 100.000, 6),
    "case_11": ("NEQ", 60, 20, True, 1928, 99.640, 2657),
    "case_12": ("DATA", 40, 26, True, 79, 100.000, 9),
    "case_13": ("ECO", 43, 7, True, 27, 100.000, 5),
    "case_14": ("NEQ", 50, 22, True, 11207, 28.194, 2689),
    "case_15": ("DIAG", 80, 3, True, 129, 99.999, 19),
    "case_16": ("DIAG", 26, 4, True, 22, 100.000, 2),
    "case_17": ("ECO", 76, 33, True, 2598, 99.989, 1983),
    "case_18": ("NEQ", 102, 2, True, 3391, 59.757, 2674),
    "case_19": ("ECO", 73, 8, True, 2991, 99.956, 1764),
    "case_20": ("DIAG", 51, 2, True, 74, 100.000, 10),
}


def build_case(case_id: str) -> ContestCase:
    """Build one contest case by id (``case_1`` .. ``case_20``)."""
    if case_id not in _BUILDERS:
        raise KeyError(f"unknown case {case_id!r}")
    category, num_pis, num_pos, hidden, size, acc, tm = _TABLE2[case_id]
    golden = _BUILDERS[case_id]()
    if golden.num_pis != num_pis or golden.num_pos != num_pos:
        raise AssertionError(
            f"{case_id}: built {golden.num_pis}/{golden.num_pos}, "
            f"Table II says {num_pis}/{num_pos}")
    return ContestCase(case_id=case_id, category=category,
                       num_pis=num_pis, num_pos=num_pos, hidden=hidden,
                       golden=golden, paper_size=size,
                       paper_accuracy=acc, paper_time=tm)


def contest_suite(case_ids: Optional[List[str]] = None) -> List[ContestCase]:
    """Build the full 20-case suite (or a named subset)."""
    if case_ids is None:
        case_ids = list(_BUILDERS)
    return [build_case(cid) for cid in case_ids]


def case_ids_by_category(category: str) -> List[str]:
    return [cid for cid, row in _TABLE2.items() if row[0] == category]
